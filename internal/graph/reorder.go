package graph

import (
	"fmt"
	"sort"
)

// This file implements vertex reordering, the classic software response
// to the low locality the paper characterizes: relabeling vertices so
// that neighbors share cache lines turns scattered accesses into
// sequential ones. The abl-reorder experiment measures the effect on the
// simulated machine.

// Order names a deterministic vertex-reordering policy. Orderings are a
// preprocessing step: kernels run over the permuted CSR and their
// per-vertex results are mapped back through the inverse permutation, so
// callers never observe permuted vertex ids.
type Order string

const (
	// OrderNone leaves the upload-order layout untouched.
	OrderNone Order = "none"
	// OrderDegree relabels by descending degree (ties by ascending
	// vertex id): hub packing, the classic layout for power-law/social
	// graphs, concentrating the hot high-degree rows in few cache lines.
	OrderDegree Order = "degree"
	// OrderRCM is a reverse Cuthill-McKee-style bandwidth reducer:
	// per-component breadth-first traversal from a minimum-degree seed,
	// visiting neighbors in ascending degree, then reversed. It pulls
	// edge endpoints close together, the right layout for road/mesh
	// graphs with large diameter and uniform degree.
	OrderRCM Order = "rcm"
)

// Valid reports whether o names a known ordering.
func (o Order) Valid() bool {
	return o == OrderNone || o == OrderDegree || o == OrderRCM
}

// Orders lists the materializable (non-identity) orderings.
func Orders() []Order { return []Order{OrderDegree, OrderRCM} }

// Reordered is a permuted view of a CSR: the relabeled graph plus both
// directions of the vertex mapping. Perm maps original ids to permuted
// ids (old -> new); Inv maps back (new -> old). Per-vertex results
// computed on G are restored to the original labeling with
// ApplyVertexPermutation(result, Inv).
type Reordered struct {
	// G is the relabeled graph.
	G *CSR
	// Order is the policy that produced the permutation.
	Order Order
	// Perm maps original vertex ids to permuted ids.
	Perm []int32
	// Inv maps permuted vertex ids back to original ids.
	Inv []int32
}

// Reorder relabels g under the named ordering and returns the permuted
// graph with its forward and inverse permutation maps. Orderings are
// deterministic: the same graph always yields the same permutation.
// OrderNone returns an identity Reordered sharing g.
func Reorder(g *CSR, o Order) (*Reordered, error) {
	if g == nil {
		return nil, fmt.Errorf("graph: reorder of nil graph")
	}
	var perm []int32
	var pg *CSR
	switch o {
	case OrderNone:
		perm = make([]int32, g.N)
		for i := range perm {
			perm[i] = int32(i)
		}
		pg = g
	case OrderDegree:
		pg, perm = ReorderByDegree(g)
	case OrderRCM:
		pg, perm = ReorderRCM(g)
	default:
		return nil, fmt.Errorf("graph: unknown order %q (want %q, %q or %q)",
			o, OrderNone, OrderDegree, OrderRCM)
	}
	inv := make([]int32, g.N)
	for old, neu := range perm {
		inv[neu] = int32(old)
	}
	return &Reordered{G: pg, Order: o, Perm: perm, Inv: inv}, nil
}

// ReorderRCM relabels g's vertices in reverse Cuthill-McKee order:
// components are processed by ascending minimum vertex id, each explored
// breadth-first from its minimum-degree vertex (ties by ascending id)
// with neighbors visited in ascending degree (ties by ascending id), and
// the full discovery sequence is reversed. The result is the usual RCM
// bandwidth reduction that packs road/mesh neighborhoods into nearby
// ids. It returns the relabeled graph and the old->new mapping.
func ReorderRCM(g *CSR) (*CSR, []int32) {
	n := g.N
	seq := make([]int32, 0, n) // discovery order (new -> old, pre-reversal)
	seen := make([]bool, n)
	comp := make([]int32, 0, 64)
	queue := make([]int32, 0, 64)
	nbuf := make([]int32, 0, 64)
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		// Collect the component to find its minimum-degree seed.
		comp = append(comp[:0], int32(v))
		seen[v] = true
		for head := 0; head < len(comp); head++ {
			ts, _ := g.Neighbors(int(comp[head]))
			for _, u := range ts {
				if !seen[u] {
					seen[u] = true
					comp = append(comp, u)
				}
			}
		}
		start := comp[0]
		for _, c := range comp[1:] {
			dc, ds := g.Degree(int(c)), g.Degree(int(start))
			if dc < ds || (dc == ds && c < start) {
				start = c
			}
		}
		// Cuthill-McKee breadth-first pass from the seed; the component
		// marks double as the visited set for this second traversal.
		for _, c := range comp {
			seen[c] = false
		}
		queue = append(queue[:0], start)
		seen[start] = true
		for head := 0; head < len(queue); head++ {
			w := queue[head]
			seq = append(seq, w)
			ts, _ := g.Neighbors(int(w))
			nbuf = nbuf[:0]
			for _, u := range ts {
				if !seen[u] {
					seen[u] = true
					nbuf = append(nbuf, u)
				}
			}
			sort.Slice(nbuf, func(a, b int) bool {
				da, db := g.Degree(int(nbuf[a])), g.Degree(int(nbuf[b]))
				if da != db {
					return da < db
				}
				return nbuf[a] < nbuf[b]
			})
			queue = append(queue, nbuf...)
		}
	}
	perm := make([]int32, n) // old -> new
	for i, old := range seq {
		perm[old] = int32(n - 1 - i) // the "reverse" in RCM
	}
	return applyPermutation(g, perm), perm
}

// DegreeSkewThreshold is the max-degree/average-degree ratio above which
// PickOrder classifies a graph as power-law and chooses hub packing.
const DegreeSkewThreshold = 8

// PickOrder chooses an ordering from the graph's degree skew: power-law
// graphs (max degree >> average degree) get OrderDegree hub packing,
// while flat-degree graphs — the road/mesh class — get OrderRCM
// bandwidth reduction.
func PickOrder(g *CSR) Order {
	avg := g.AvgDegree()
	if avg <= 0 {
		return OrderRCM
	}
	if float64(g.MaxDegree()) >= DegreeSkewThreshold*avg {
		return OrderDegree
	}
	return OrderRCM
}

// ReorderBFS relabels g's vertices in breadth-first discovery order from
// the given root (unreached vertices keep relative order after the
// reached ones). Neighbors end up with nearby ids, improving the spatial
// locality of distance/rank/label arrays. It returns the relabeled graph
// and the mapping from old to new vertex ids.
func ReorderBFS(g *CSR, root int) (*CSR, []int32) {
	n := g.N
	perm := make([]int32, n) // old -> new
	for i := range perm {
		perm[i] = -1
	}
	next := int32(0)
	queue := make([]int32, 0, n)
	visit := func(s int32) {
		if perm[s] != -1 {
			return
		}
		perm[s] = next
		next++
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			ts, _ := g.Neighbors(int(v))
			for _, u := range ts {
				if perm[u] == -1 {
					perm[u] = next
					next++
					queue = append(queue, u)
				}
			}
		}
	}
	if n > 0 {
		if root < 0 || root >= n {
			root = 0
		}
		visit(int32(root))
		for v := 0; v < n; v++ {
			visit(int32(v))
		}
	}
	return applyPermutation(g, perm), perm
}

// ReorderByDegree relabels vertices by descending degree (hubs first), a
// common layout for power-law graphs: the hot hub rows pack into few
// cache lines.
func ReorderByDegree(g *CSR) (*CSR, []int32) {
	n := g.N
	order := make([]int32, n) // new -> old
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Degree(int(order[a])) > g.Degree(int(order[b]))
	})
	perm := make([]int32, n) // old -> new
	for newID, oldID := range order {
		perm[oldID] = int32(newID)
	}
	return applyPermutation(g, perm), perm
}

// applyPermutation rebuilds g with vertex ids mapped through perm
// (old -> new).
func applyPermutation(g *CSR, perm []int32) *CSR {
	edges := make([]Edge, 0, g.M())
	for v := 0; v < g.N; v++ {
		ts, ws := g.Neighbors(v)
		for i, t := range ts {
			edges = append(edges, Edge{From: perm[v], To: perm[t], Weight: ws[i]})
		}
	}
	return FromEdges(g.N, edges, false)
}

// ApplyVertexPermutation maps per-vertex data through a permutation so
// results computed on a reordered graph can be compared against the
// original labeling: out[perm[v]] = in[v].
func ApplyVertexPermutation[T any](in []T, perm []int32) []T {
	out := make([]T, len(in))
	for v, x := range in {
		out[perm[v]] = x
	}
	return out
}

// Locality scores a graph layout: the fraction of edges whose endpoints
// land within window vertex ids of each other (i.e. likely on nearby
// cache lines). Higher is better.
func Locality(g *CSR, window int) float64 {
	if g.M() == 0 {
		return 0
	}
	close := 0
	for v := 0; v < g.N; v++ {
		ts, _ := g.Neighbors(v)
		for _, t := range ts {
			d := int(t) - v
			if d < 0 {
				d = -d
			}
			if d <= window {
				close++
			}
		}
	}
	return float64(close) / float64(g.M())
}

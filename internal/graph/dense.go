package graph

// Dense is a weighted adjacency matrix. The paper's APSP and BETW_CENT
// benchmarks operate on an adjacency matrix representation (Section IV-F).
type Dense struct {
	// N is the vertex count.
	N int
	// W is the row-major weight matrix; W[i*N+j] is the weight of edge
	// i->j, Inf if absent, and 0 on the diagonal.
	W []int32
}

// NewDense creates an edgeless matrix of n vertices.
func NewDense(n int) *Dense {
	d := &Dense{N: n, W: make([]int32, n*n)}
	for i := range d.W {
		d.W[i] = Inf
	}
	for v := 0; v < n; v++ {
		d.W[v*n+v] = 0
	}
	return d
}

// At returns the weight of edge i->j.
func (d *Dense) At(i, j int) int32 { return d.W[i*d.N+j] }

// Set assigns the weight of edge i->j.
func (d *Dense) Set(i, j int, w int32) { d.W[i*d.N+j] = w }

// DenseFromCSR converts a CSR graph to matrix form. Duplicate edges keep
// the minimum weight.
func DenseFromCSR(g *CSR) *Dense {
	d := NewDense(g.N)
	for v := 0; v < g.N; v++ {
		ts, ws := g.Neighbors(v)
		for i, t := range ts {
			if ws[i] < d.At(v, int(t)) {
				d.Set(v, int(t), ws[i])
			}
		}
	}
	return d
}

// CSRFromDense converts a matrix back to CSR form, dropping Inf entries
// and the diagonal.
func CSRFromDense(d *Dense) *CSR {
	var edges []Edge
	for i := 0; i < d.N; i++ {
		for j := 0; j < d.N; j++ {
			if i != j && d.At(i, j) < Inf {
				edges = append(edges, Edge{From: int32(i), To: int32(j), Weight: d.At(i, j)})
			}
		}
	}
	return FromEdges(d.N, edges, false)
}

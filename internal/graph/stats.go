package graph

// Stats summarizes a graph for the Table III inventory.
type Stats struct {
	Vertices   int
	Edges      int // stored directed edges
	AvgDegree  float64
	MaxDegree  int
	Components int
	LargestCC  int
}

// Summarize computes Stats for g.
func Summarize(g *CSR) Stats {
	comp, sizes := ComponentsBFS(g)
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	_ = comp
	return Stats{
		Vertices:   g.N,
		Edges:      g.M(),
		AvgDegree:  g.AvgDegree(),
		MaxDegree:  g.MaxDegree(),
		Components: len(sizes),
		LargestCC:  largest,
	}
}

// ComponentsBFS labels weakly connected components by BFS over the stored
// edges (CRONO inputs are symmetric, so weak == strong). It returns the
// per-vertex component id and the size of each component.
func ComponentsBFS(g *CSR) (labels []int32, sizes []int) {
	labels = make([]int32, g.N)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for s := 0; s < g.N; s++ {
		if labels[s] != -1 {
			continue
		}
		id := int32(len(sizes))
		size := 0
		labels[s] = id
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			size++
			ts, _ := g.Neighbors(int(v))
			for _, t := range ts {
				if labels[t] == -1 {
					labels[t] = id
					queue = append(queue, t)
				}
			}
		}
		sizes = append(sizes, size)
	}
	return labels, sizes
}

// DegreeHistogram returns counts of vertices by out-degree, indexed by
// degree up to the maximum.
func DegreeHistogram(g *CSR) []int {
	h := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N; v++ {
		h[g.Degree(v)]++
	}
	return h
}

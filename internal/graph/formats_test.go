package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	g := UniformSparse(150, 4, 30, 21)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != g.N || back.M() != g.M() {
		t.Fatalf("round trip %d/%d, want %d/%d", back.N, back.M(), g.N, g.M())
	}
	for i := range g.Targets {
		if back.Targets[i] != g.Targets[i] || back.Weights[i] != g.Weights[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestMatrixMarketVariants(t *testing.T) {
	// Pattern symmetric: unit weights, symmetrized.
	in := `%%MatrixMarket matrix coordinate pattern symmetric
% a comment
3 3 2
2 1
3 2
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 4 {
		t.Fatalf("pattern symmetric: %d vertices %d edges", g.N, g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("symmetrization missing")
	}
	// Real general with float weights.
	in = `%%MatrixMarket matrix coordinate real general
2 2 1
1 2 3.7
`
	g, err = ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.EdgeWeight(0, 1); w != 4 {
		t.Fatalf("rounded weight %d, want 4", w)
	}
	if g.HasEdge(1, 0) {
		t.Fatal("general matrix symmetrized")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 2 0 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 3 1\n1 2 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 -4\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\nx y 1\n",
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMETISRoundTrip(t *testing.T) {
	g := UniformSparse(120, 3, 20, 33)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != g.N || back.M() != g.M() {
		t.Fatalf("round trip %d/%d, want %d/%d", back.N, back.M(), g.N, g.M())
	}
	for i := range g.Targets {
		if back.Targets[i] != g.Targets[i] || back.Weights[i] != g.Weights[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestMETISUnweighted(t *testing.T) {
	in := "3 2\n2 3\n1\n1\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 4 {
		t.Fatalf("%d vertices %d edges", g.N, g.M())
	}
	if w, _ := g.EdgeWeight(0, 1); w != 1 {
		t.Fatalf("weight %d", w)
	}
}

func TestMETISErrors(t *testing.T) {
	cases := []string{
		"x y\n",
		"2 1 011\n2 1\n1 1\n", // vertex weights unsupported
		"3 1\n2\n",            // missing vertex lines
		"2 1\n9\n\n",          // neighbor out of range
		"2 1 001\n2 x\n1 1\n", // bad weight
	}
	for i, in := range cases {
		if _, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Writing a directed graph must fail.
	d := FromEdges(3, []Edge{{From: 0, To: 1, Weight: 2}}, false)
	if err := WriteMETIS(&bytes.Buffer{}, d); err == nil {
		t.Error("asymmetric graph accepted by METIS writer")
	}
}

func TestExtraGenerators(t *testing.T) {
	rmat := RMAT(10, 8, 5)
	if err := rmat.Validate(); err != nil {
		t.Fatal(err)
	}
	if rmat.N != 1024 || !rmat.IsSymmetric() {
		t.Fatalf("rmat %d vertices", rmat.N)
	}
	// RMAT is skewed: its max degree dwarfs the average.
	if rmat.MaxDegree() < 4*int(rmat.AvgDegree()) {
		t.Fatalf("rmat too uniform: max %d avg %.1f", rmat.MaxDegree(), rmat.AvgDegree())
	}

	sw := SmallWorld(500, 6, 0.1, 7)
	if err := sw.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sw.IsSymmetric() {
		t.Fatal("small world not symmetric")
	}
	if d := sw.AvgDegree(); d < 4 || d > 8 {
		t.Fatalf("small world avg degree %g", d)
	}

	grid := Grid(8, 5)
	if grid.N != 40 || grid.M() != 2*(7*5+8*4) {
		t.Fatalf("grid %d/%d", grid.N, grid.M())
	}
	if _, sizes := ComponentsBFS(grid); len(sizes) != 1 {
		t.Fatal("grid disconnected")
	}

	torus := Torus(6, 4)
	for v := 0; v < torus.N; v++ {
		if torus.Degree(v) != 4 {
			t.Fatalf("torus vertex %d degree %d", v, torus.Degree(v))
		}
	}
}

func TestExtraGeneratorsDegenerate(t *testing.T) {
	if g := SmallWorld(2, 4, 0.5, 1); g.Validate() != nil {
		t.Fatal("tiny small world invalid")
	}
	if g := RMAT(0, 2, 1); g.Validate() != nil {
		t.Fatal("tiny rmat invalid")
	}
	if g := Grid(1, 1); g.N != 1 || g.M() != 0 {
		t.Fatal("unit grid wrong")
	}
}

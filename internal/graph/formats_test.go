package graph

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	g := UniformSparse(150, 4, 30, 21)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != g.N || back.M() != g.M() {
		t.Fatalf("round trip %d/%d, want %d/%d", back.N, back.M(), g.N, g.M())
	}
	for i := range g.Targets {
		if back.Targets[i] != g.Targets[i] || back.Weights[i] != g.Weights[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestMatrixMarketVariants(t *testing.T) {
	// Pattern symmetric: unit weights, symmetrized.
	in := `%%MatrixMarket matrix coordinate pattern symmetric
% a comment
3 3 2
2 1
3 2
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 4 {
		t.Fatalf("pattern symmetric: %d vertices %d edges", g.N, g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("symmetrization missing")
	}
	// Real general with float weights.
	in = `%%MatrixMarket matrix coordinate real general
2 2 1
1 2 3.7
`
	g, err = ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.EdgeWeight(0, 1); w != 4 {
		t.Fatalf("rounded weight %d, want 4", w)
	}
	if g.HasEdge(1, 0) {
		t.Fatal("general matrix symmetrized")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 2 0 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 3 1\n1 2 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 -4\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\nx y 1\n",
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMETISRoundTrip(t *testing.T) {
	g := UniformSparse(120, 3, 20, 33)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != g.N || back.M() != g.M() {
		t.Fatalf("round trip %d/%d, want %d/%d", back.N, back.M(), g.N, g.M())
	}
	for i := range g.Targets {
		if back.Targets[i] != g.Targets[i] || back.Weights[i] != g.Weights[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestMETISUnweighted(t *testing.T) {
	in := "3 2\n2 3\n1\n1\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 4 {
		t.Fatalf("%d vertices %d edges", g.N, g.M())
	}
	if w, _ := g.EdgeWeight(0, 1); w != 1 {
		t.Fatalf("weight %d", w)
	}
}

func TestMETISErrors(t *testing.T) {
	cases := []string{
		"x y\n",
		"2 1 011\n2 1\n1 1\n", // vertex weights unsupported
		"3 1\n2\n",            // missing vertex lines
		"2 1\n9\n\n",          // neighbor out of range
		"2 1 001\n2 x\n1 1\n", // bad weight
	}
	for i, in := range cases {
		if _, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Writing a directed graph must fail.
	d := FromEdges(3, []Edge{{From: 0, To: 1, Weight: 2}}, false)
	if err := WriteMETIS(&bytes.Buffer{}, d); err == nil {
		t.Error("asymmetric graph accepted by METIS writer")
	}
}

// TestMETISHubLineBeyondMegabyte regression-tests the removal of the
// readers' 1 MiB line cap: a single high-degree hub's adjacency row in a
// METIS file easily exceeds it, and the old bufio.Scanner-based reader
// rejected the file outright (bufio.ErrTooLong).
func TestMETISHubLineBeyondMegabyte(t *testing.T) {
	const n = 1 << 18 // star center with 262143 neighbors: ~2.3 MiB line
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{From: 0, To: int32(i), Weight: int32(i%9 + 1)})
	}
	g := FromEdges(n, edges, true)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 2<<20 {
		t.Fatalf("test graph too small to exercise the cap: %d bytes", buf.Len())
	}
	back, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatalf("hub line rejected: %v", err)
	}
	if back.N != g.N || back.M() != g.M() {
		t.Fatalf("round trip %d/%d, want %d/%d", back.N, back.M(), g.N, g.M())
	}
	if w, ok := back.EdgeWeight(0, n-1); !ok || w != int32((n-1)%9+1) {
		t.Fatalf("hub edge weight %d (%v)", w, ok)
	}
}

// TestMatrixMarketLongCommentLine: comment lines are unbounded too.
func TestMatrixMarketLongCommentLine(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("%%MatrixMarket matrix coordinate pattern general\n%")
	sb.WriteString(strings.Repeat("x", 2<<20))
	sb.WriteString("\n2 2 1\n1 2\n")
	g, err := ReadMatrixMarket(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 2 || !g.HasEdge(0, 1) {
		t.Fatal("graph mangled by long comment")
	}
}

func TestFormatsMalformedLines(t *testing.T) {
	mm := []string{
		"%%MatrixMarket matrix coordinate real general\na b c\n",                                       // garbage size line
		"%%MatrixMarket matrix coordinate real general\n2 2\n",                                         // short size line
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",                                    // lone entry field
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 x\n",                                // bad weight
		"%%MatrixMarket matrix coordinate real general\n",                                              // no size line
		"%%MatrixMarket matrix coordinate real general\n99999999999999999999 99999999999999999999 1\n", // overflow
	}
	for i, in := range mm {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("MatrixMarket case %d accepted", i)
		}
	}
	metis := []string{
		"",                            // no header
		"99999999999999999999 1\n1\n", // overflow vertex count
		"2\n1\n2\n",                   // header missing edge count
	}
	for i, in := range metis {
		if _, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("METIS case %d accepted", i)
		}
	}
	// Windows line endings must parse identically.
	g, err := ReadMETIS(strings.NewReader("3 2\r\n2 3\r\n1\r\n1\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 4 {
		t.Fatalf("CRLF METIS: %d vertices %d edges", g.N, g.M())
	}
}

func benchmarkInput(b *testing.B, write func(io.Writer, *CSR) error) []byte {
	b.Helper()
	g := UniformSparse(20000, 8, 100, 42)
	var buf bytes.Buffer
	if err := write(&buf, g); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkReadMETIS(b *testing.B) {
	in := benchmarkInput(b, WriteMETIS)
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadMETIS(bytes.NewReader(in)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadMatrixMarket(b *testing.B) {
	in := benchmarkInput(b, WriteMatrixMarket)
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadMatrixMarket(bytes.NewReader(in)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExtraGenerators(t *testing.T) {
	rmat := RMAT(10, 8, 5)
	if err := rmat.Validate(); err != nil {
		t.Fatal(err)
	}
	if rmat.N != 1024 || !rmat.IsSymmetric() {
		t.Fatalf("rmat %d vertices", rmat.N)
	}
	// RMAT is skewed: its max degree dwarfs the average.
	if rmat.MaxDegree() < 4*int(rmat.AvgDegree()) {
		t.Fatalf("rmat too uniform: max %d avg %.1f", rmat.MaxDegree(), rmat.AvgDegree())
	}

	sw := SmallWorld(500, 6, 0.1, 7)
	if err := sw.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sw.IsSymmetric() {
		t.Fatal("small world not symmetric")
	}
	if d := sw.AvgDegree(); d < 4 || d > 8 {
		t.Fatalf("small world avg degree %g", d)
	}

	grid := Grid(8, 5)
	if grid.N != 40 || grid.M() != 2*(7*5+8*4) {
		t.Fatalf("grid %d/%d", grid.N, grid.M())
	}
	if _, sizes := ComponentsBFS(grid); len(sizes) != 1 {
		t.Fatal("grid disconnected")
	}

	torus := Torus(6, 4)
	for v := 0; v < torus.N; v++ {
		if torus.Degree(v) != 4 {
			t.Fatalf("torus vertex %d degree %d", v, torus.Degree(v))
		}
	}
}

func TestExtraGeneratorsDegenerate(t *testing.T) {
	if g := SmallWorld(2, 4, 0.5, 1); g.Validate() != nil {
		t.Fatal("tiny small world invalid")
	}
	if g := RMAT(0, 2, 1); g.Validate() != nil {
		t.Fatal("tiny rmat invalid")
	}
	if g := Grid(1, 1); g.N != 1 || g.M() != 0 {
		t.Fatal("unit grid wrong")
	}
}

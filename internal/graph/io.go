package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteEdgeList writes g in SNAP-style edge-list text format:
// a header comment with the vertex count, then one "from to weight" line
// per stored directed edge.
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# crono edge list\n# nodes %d edges %d\n", g.N, g.M()); err != nil {
		return err
	}
	for v := 0; v < g.N; v++ {
		ts, ws := g.Neighbors(v)
		for i, t := range ts {
			if _, err := fmt.Fprintf(bw, "%d %d %d\n", v, t, ws[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Lines starting
// with '#' are comments, except that a "# nodes N ..." comment fixes the
// vertex count; otherwise the count is one past the largest endpoint.
// A missing weight column defaults to weight 1.
func ReadEdgeList(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := -1
	var edges []Edge
	maxV := int32(-1)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			var nodes, e int
			if _, err := fmt.Sscanf(text, "# nodes %d edges %d", &nodes, &e); err == nil {
				n = nodes
			}
			continue
		}
		var from, to, weight int32
		weight = 1
		k, err := fmt.Sscanf(text, "%d %d %d", &from, &to, &weight)
		if err != nil && k < 2 {
			return nil, fmt.Errorf("graph: line %d: %q: %v", line, text, err)
		}
		if from < 0 || to < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex", line)
		}
		if from > maxV {
			maxV = from
		}
		if to > maxV {
			maxV = to
		}
		edges = append(edges, Edge{From: from, To: to, Weight: weight})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = int(maxV) + 1
	}
	if int(maxV) >= n {
		return nil, fmt.Errorf("graph: vertex %d exceeds declared count %d", maxV, n)
	}
	return FromEdges(n, edges, false), nil
}

package graph

// FNV-1a 64-bit parameters (the stdlib hash/fnv is not used so the byte
// feeding order over the CSR arrays stays explicit and stable).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Fingerprint returns a deterministic 64-bit FNV-1a digest of the graph:
// vertex count, edge count, and the full Offsets/Targets/Weights arrays in
// order. Two CSR graphs have equal fingerprints iff they are structurally
// identical; because FromEdges canonicalizes edge lists (sorting neighbors,
// dropping self loops, merging duplicates), the same logical graph built
// from any permutation of its edge list fingerprints identically. The
// serving layer uses the fingerprint as a content-addressed graph ID and
// result-cache key.
func (g *CSR) Fingerprint() uint64 {
	h := fnvOffset64
	mix64 := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= uint64(byte(v >> s))
			h *= fnvPrime64
		}
	}
	mix32 := func(v uint32) {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(v >> s))
			h *= fnvPrime64
		}
	}
	mix64(uint64(g.N))
	mix64(uint64(g.M()))
	for _, o := range g.Offsets {
		mix64(uint64(o))
	}
	for _, t := range g.Targets {
		mix32(uint32(t))
	}
	for _, w := range g.Weights {
		mix32(uint32(w))
	}
	return h
}

package racecheck

import (
	"context"
	"fmt"
	"testing"

	"crono/internal/core"
	"crono/internal/graph"
)

// sweepCase is one cell of the zero-race pin matrix.
type sweepCase struct {
	bench    core.Benchmark
	strategy core.Strategy
	kind     graph.Kind
	threads  int
}

// sweepCases enumerates every shipped kernel × strategy × generator ×
// thread-count cell checked for freedom from annotation-level races.
// Strategy-less kernels (matrix, cities and the variants) run once per
// generator cell; graph-division kernels run under all three
// strategies. Inputs are tiny — the deterministic scheduler yields at
// every annotation, so cost scales with annotation count, and a race in
// the access pattern shows up at any size.
func sweepCases() []sweepCase {
	kinds := []graph.Kind{graph.KindSparse, graph.KindRoadTX}
	strategies := []core.Strategy{core.StrategyScan, core.StrategyFrontier, core.StrategyHybrid}
	threadCounts := []int{2, 3}
	var cases []sweepCase
	for _, b := range core.Suite() {
		strats := strategies
		if b.UsesMatrix || b.UsesCities {
			strats = strategies[:1]
		}
		for _, s := range strats {
			for _, k := range kinds {
				for _, th := range threadCounts {
					cases = append(cases, sweepCase{b, s, k, th})
				}
			}
		}
	}
	// Variants are single-strategy kernels: one strategy column each.
	for _, b := range core.Variants() {
		for _, k := range kinds {
			for _, th := range threadCounts {
				cases = append(cases, sweepCase{b, core.StrategyScan, k, th})
			}
		}
	}
	return cases
}

// TestKernelSweepZeroRaces pins the absence of annotation-level races
// across the shipped kernels on the deterministic platform. A failure
// here means either a kernel regression (an annotation lost its lock or
// barrier ordering) or a detector regression (a phantom race).
func TestKernelSweepZeroRaces(t *testing.T) {
	for _, tc := range sweepCases() {
		tc := tc
		name := fmt.Sprintf("%s/%s/%s/t%d", tc.bench.Name, tc.strategy, tc.kind, tc.threads)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			pl := New()
			req := core.Request{
				Threads:  tc.threads,
				Strategy: tc.strategy,
			}
			req.G = graph.Generate(tc.kind, 40, 1)
			req.Source = 0
			req.Target = req.G.N - 1
			switch {
			case tc.bench.UsesMatrix:
				req.D = graph.DenseFromCSR(graph.Generate(tc.kind, 12, 1))
			case tc.bench.UsesCities:
				req.Cities = graph.Cities(7, 3)
			}
			if _, err := tc.bench.Run(context.Background(), pl, req); err != nil {
				t.Fatal(err)
			}
			if races := pl.Races(); len(races) != 0 {
				t.Fatalf("kernel reported %d races:\n%s", len(races), formatRaces(races))
			}
		})
	}
}

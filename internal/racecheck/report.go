// Package racecheck implements an annotation-level happens-before race
// detector for the exec.Ctx API.
//
// The detector observes the same annotation stream the simulator times:
// Load/Store (and their Atomic and Span forms) build per-address access
// history, Lock/Unlock maintain per-lock release clocks, and Barrier
// joins and redistributes the participants' vector clocks. Two accesses
// to the same address conflict when at least one is a write; a conflict
// is a race when neither access happens-before the other — FastTrack
// style, adapted to the annotation API (see DESIGN.md, "Happens-before
// model of the annotation API").
//
// Atomic annotations are synchronization: a pair of conflicting atomic
// accesses is never a race (Go guarantees sequentially consistent
// atomics), and atomic operations on an address carry acquire/release
// edges through that address's synchronization clock. A conflicting
// unordered pair where only one side is atomic is still a race.
//
// Two entry points share the detector:
//
//   - New returns a standalone deterministic platform: a cooperative
//     round-robin scheduler runs one thread at a time, yielding at every
//     annotation, so a given kernel, input and thread count always
//     produce the same interleaving and the same report.
//   - Wrap proxies an existing platform (native or sim), checking the
//     annotation stream while the inner platform provides real timing.
package racecheck

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sort"

	"crono/internal/exec"
)

// RaceAccess describes one side of a racing pair.
type RaceAccess struct {
	// TID is the annotating thread.
	TID int `json:"tid"`
	// Kind is "read", "write", "atomic read" or "atomic write".
	Kind string `json:"kind"`
	// Site is the annotation call site as "file.go:line".
	Site string `json:"site"`
}

// Race is one detected conflicting, happens-before-unordered access pair.
type Race struct {
	// Location names the accessed datum as "region[elem]" via the
	// platform's region table, falling back to the raw hex address for
	// memory no registered region owns.
	Location string `json:"location"`
	// Prior is the earlier access of the pair in detector observation
	// order.
	Prior RaceAccess `json:"prior"`
	// Current is the later access.
	Current RaceAccess `json:"current"`
}

// String formats the race the way crono-race prints it.
func (r Race) String() string {
	return fmt.Sprintf("race on %s: %s by T%d at %s unordered with %s by T%d at %s",
		r.Location,
		r.Current.Kind, r.Current.TID, r.Current.Site,
		r.Prior.Kind, r.Prior.TID, r.Prior.Site)
}

// accessRec is the detector's internal record of one access.
type accessRec struct {
	tid    int
	clock  uint64
	pc     uintptr
	atomic bool
	write  bool
}

func (a accessRec) kind() string {
	switch {
	case a.atomic && a.write:
		return "atomic write"
	case a.atomic:
		return "atomic read"
	case a.write:
		return "write"
	}
	return "read"
}

// site resolves a captured program counter to "file.go:line". Only the
// base name is kept so reports are stable across checkouts.
func site(pc uintptr) string {
	if pc == 0 {
		return "?"
	}
	frames := runtime.CallersFrames([]uintptr{pc})
	f, _ := frames.Next()
	if f.File == "" {
		return "?"
	}
	return fmt.Sprintf("%s:%d", filepath.Base(f.File), f.Line)
}

// rawRace is a race before site resolution.
type rawRace struct {
	addr           exec.Addr
	prior, current accessRec
}

// raceKey dedups races: one report per distinct (datum, site pair,
// access kinds), so a racy loop body yields one line, not one per
// iteration.
type raceKey struct {
	addr                     exec.Addr
	priorPC, currentPC       uintptr
	priorWrite, currentWrite bool
}

// resolveRaces formats raw races against a region table, deduplicating
// and sorting for byte-stable output.
func resolveRaces(raw []rawRace, table *exec.RegionTable) []Race {
	out := make([]Race, 0, len(raw))
	for _, rr := range raw {
		out = append(out, Race{
			Location: table.Describe(rr.addr),
			Prior: RaceAccess{
				TID:  rr.prior.tid,
				Kind: rr.prior.kind(),
				Site: site(rr.prior.pc),
			},
			Current: RaceAccess{
				TID:  rr.current.tid,
				Kind: rr.current.kind(),
				Site: site(rr.current.pc),
			},
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Location != b.Location {
			return a.Location < b.Location
		}
		if a.Current.Site != b.Current.Site {
			return a.Current.Site < b.Current.Site
		}
		if a.Prior.Site != b.Prior.Site {
			return a.Prior.Site < b.Prior.Site
		}
		if a.Current.Kind != b.Current.Kind {
			return a.Current.Kind < b.Current.Kind
		}
		return a.Prior.Kind < b.Prior.Kind
	})
	return out
}

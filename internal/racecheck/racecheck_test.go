package racecheck

import (
	"context"
	"reflect"
	"regexp"
	"testing"

	"crono/internal/exec"
	"crono/internal/native"
	"crono/internal/racecheck/testdata/racykernels"
)

var siteRe = regexp.MustCompile(`^racykernels\.go:\d+$`)

// pinRaces checks everything about the reports except the fixture line
// numbers, which would make every fixture edit a golden churn: exact
// location (region + element), access kinds, thread ids, and that each
// site points into the fixture file.
func pinRaces(t *testing.T, got []Race, want []Race) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d races, want %d:\n%s", len(got), len(want), formatRaces(got))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Location != w.Location {
			t.Errorf("race %d: location %q, want %q", i, g.Location, w.Location)
		}
		if g.Prior.Kind != w.Prior.Kind || g.Current.Kind != w.Current.Kind {
			t.Errorf("race %d: kinds %q/%q, want %q/%q", i, g.Prior.Kind, g.Current.Kind, w.Prior.Kind, w.Current.Kind)
		}
		if g.Prior.TID != w.Prior.TID || g.Current.TID != w.Current.TID {
			t.Errorf("race %d: tids T%d/T%d, want T%d/T%d", i, g.Prior.TID, g.Current.TID, w.Prior.TID, w.Current.TID)
		}
		if !siteRe.MatchString(g.Prior.Site) || !siteRe.MatchString(g.Current.Site) {
			t.Errorf("race %d: sites %q/%q do not point into racykernels.go", i, g.Prior.Site, g.Current.Site)
		}
	}
}

func formatRaces(rs []Race) string {
	s := ""
	for _, r := range rs {
		s += r.String() + "\n"
	}
	return s
}

func TestSharedCounterGolden(t *testing.T) {
	pl := New()
	_, _, err := racykernels.SharedCounter(pl, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin at 2 threads yields exactly three deduplicated pairs
	// on the counter word: the unlocked increment races read-vs-write,
	// write-vs-write and write-vs-read.
	pinRaces(t, pl.Races(), []Race{
		{Location: "racy.counter[0]", Prior: RaceAccess{TID: 1, Kind: "write"}, Current: RaceAccess{TID: 0, Kind: "read"}},
		{Location: "racy.counter[0]", Prior: RaceAccess{TID: 1, Kind: "read"}, Current: RaceAccess{TID: 0, Kind: "write"}},
		{Location: "racy.counter[0]", Prior: RaceAccess{TID: 0, Kind: "write"}, Current: RaceAccess{TID: 1, Kind: "write"}},
	})
}

func TestMissingBarrierGolden(t *testing.T) {
	pl := New()
	_, _, err := racykernels.MissingBarrier(pl, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Each cross-chunk read races with the owner's initializing write;
	// locations enumerate every element of the array.
	pinRaces(t, pl.Races(), []Race{
		{Location: "racy.data[0]", Prior: RaceAccess{TID: 0, Kind: "write"}, Current: RaceAccess{TID: 1, Kind: "read"}},
		{Location: "racy.data[1]", Prior: RaceAccess{TID: 0, Kind: "write"}, Current: RaceAccess{TID: 1, Kind: "read"}},
		{Location: "racy.data[2]", Prior: RaceAccess{TID: 1, Kind: "write"}, Current: RaceAccess{TID: 0, Kind: "read"}},
		{Location: "racy.data[3]", Prior: RaceAccess{TID: 1, Kind: "write"}, Current: RaceAccess{TID: 0, Kind: "read"}},
	})
}

func TestFixedFixturesReportNothing(t *testing.T) {
	pl := New()
	if _, _, err := racykernels.FixedCounter(pl, 3, 5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := racykernels.FixedBarrier(pl, 3, 2); err != nil {
		t.Fatal(err)
	}
	if races := pl.Races(); len(races) != 0 {
		t.Fatalf("fixed fixtures reported races:\n%s", formatRaces(races))
	}
}

func TestFixtureResultsCorrectUnderScheduler(t *testing.T) {
	pl := New()
	got, _, err := racykernels.FixedCounter(pl, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Fatalf("locked counter = %d, want 15", got)
	}
	out, _, err := racykernels.FixedBarrier(pl, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != int32(i) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestDeterministicReports(t *testing.T) {
	run := func() ([]Race, []uint64) {
		pl := New()
		_, rep, err := racykernels.SharedCounter(pl, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		return pl.Races(), rep.Instructions
	}
	r1, i1 := run()
	r2, i2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("reports differ between identical runs:\n%s\nvs\n%s", formatRaces(r1), formatRaces(r2))
	}
	if !reflect.DeepEqual(i1, i2) {
		t.Fatalf("instruction counts differ: %v vs %v", i1, i2)
	}
}

func TestDeadlockDetected(t *testing.T) {
	pl := New()
	a, b := pl.NewLock(), pl.NewLock()
	_, err := pl.RunCtx(context.Background(), 2, func(ctx exec.Ctx) {
		first, second := a, b
		if ctx.TID() == 1 {
			first, second = b, a
		}
		ctx.Lock(first)
		ctx.Compute(1)
		ctx.Lock(second)
		ctx.Unlock(second)
		ctx.Unlock(first)
	})
	if err == nil {
		t.Fatal("lock-order inversion did not report a deadlock")
	}
}

// TestBarrierAbortNoPhantomRaces cancels a run while threads sit at a
// barrier. The abort releases the waiters without the barrier's clock
// join; the detector must stop recording instead of reporting the
// unwinding threads' accesses as races.
func TestBarrierAbortNoPhantomRaces(t *testing.T) {
	pl := New()
	n := 8
	data := make([]int32, n)
	r := pl.Alloc("abort.data", n, 4)
	bar := pl.NewBarrier(2)
	goCtx, cancel := context.WithCancel(context.Background())
	_, err := pl.RunCtx(goCtx, 2, func(ctx exec.Ctx) {
		tid := ctx.TID()
		for round := 0; ; round++ {
			for i := tid * 4; i < tid*4+4; i++ {
				data[i] = int32(round)
				ctx.Store(r.At(i))
			}
			ctx.Barrier(bar)
			if tid == 0 && round == 1 {
				cancel()
			}
			if ctx.Checkpoint() != nil {
				// Unwind touching the *other* thread's chunk: ordered
				// only if the detector wrongly joined an aborted
				// barrier, racy otherwise — either way it must not be
				// reported after the abort.
				other := (1 - tid) * 4
				ctx.Load(r.At(other))
				return
			}
			ctx.Barrier(bar)
		}
	})
	if err != context.Canceled {
		t.Fatalf("RunCtx error = %v, want context.Canceled", err)
	}
	if races := pl.Races(); len(races) != 0 {
		t.Fatalf("aborted run reported phantom races:\n%s", formatRaces(races))
	}
}

// TestWrapAbortNoPhantomRaces is the same contract for the proxy mode
// over the native platform, where the inner barrier does the blocking.
func TestWrapAbortNoPhantomRaces(t *testing.T) {
	for round := 0; round < 10; round++ {
		ck := Wrap(native.New())
		n := 8
		data := make([]int32, n)
		r := ck.Alloc("abort.data", n, 4)
		bar := ck.NewBarrier(2)
		goCtx, cancel := context.WithCancel(context.Background())
		_, err := ck.RunCtx(goCtx, 2, func(ctx exec.Ctx) {
			tid := ctx.TID()
			for round := 0; ; round++ {
				for i := tid * 4; i < tid*4+4; i++ {
					data[i] = int32(round)
					ctx.Store(r.At(i))
				}
				ctx.Barrier(bar)
				if tid == 0 && round == 1 {
					cancel()
				}
				if ctx.Checkpoint() != nil {
					return
				}
				ctx.Barrier(bar)
			}
		})
		if err != context.Canceled {
			t.Fatalf("RunCtx error = %v, want context.Canceled", err)
		}
		if races := ck.Races(); len(races) != 0 {
			t.Fatalf("aborted wrapped run reported phantom races:\n%s", formatRaces(races))
		}
	}
}

func TestWrapNameAndRegions(t *testing.T) {
	ck := Wrap(native.New())
	if ck.Name() != "racecheck+native" {
		t.Fatalf("Name() = %q", ck.Name())
	}
	r := ck.Alloc("w.data", 4, 8)
	if got := ck.Table().Describe(r.At(2)); got != "w.data[2]" {
		t.Fatalf("Describe = %q, want w.data[2]", got)
	}
}

func TestStandaloneReportShape(t *testing.T) {
	pl := New()
	if pl.Name() != "racecheck" {
		t.Fatalf("Name() = %q", pl.Name())
	}
	r := pl.Alloc("shape.data", 8, 4)
	rep := pl.Run(3, func(ctx exec.Ctx) {
		ctx.Compute(2)
		ctx.Load(r.At(ctx.TID()))
	})
	if rep.Threads != 3 || len(rep.Instructions) != 3 {
		t.Fatalf("report shape: %+v", rep)
	}
	for t2, in := range rep.Instructions {
		if in != 3 {
			t.Fatalf("thread %d instructions = %d, want 3", t2, in)
		}
	}
}

func TestRaceString(t *testing.T) {
	r := Race{
		Location: "bfs.level[3]",
		Prior:    RaceAccess{TID: 0, Kind: "write", Site: "bfs.go:70"},
		Current:  RaceAccess{TID: 1, Kind: "read", Site: "bfs.go:80"},
	}
	want := "race on bfs.level[3]: read by T1 at bfs.go:80 unordered with write by T0 at bfs.go:70"
	if got := r.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestMaxRacesCap(t *testing.T) {
	pl := New()
	n := 4 * (defaultMaxRaces + 50)
	data := make([]int32, n)
	r := pl.Alloc("cap.data", n, 4)
	_, err := pl.RunCtx(context.Background(), 2, func(ctx exec.Ctx) {
		// Every element write-write races: distinct addresses, so dedup
		// does not collapse them and the cap must.
		for i := 0; i < n; i++ {
			data[i] = int32(ctx.TID())
			ctx.Store(r.At(i))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pl.Races()); got != defaultMaxRaces {
		t.Fatalf("recorded %d races, want cap %d", got, defaultMaxRaces)
	}
}

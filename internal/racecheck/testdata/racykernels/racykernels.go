// Package racykernels holds deliberately buggy kernels used as
// racecheck fixtures. Each kernel annotates a synchronization mistake
// the detector must catch; the golden tests pin the exact reports.
//
// The kernels are only ever run on the standalone racecheck platform:
// its cooperative scheduler serializes the threads, so the Go-level
// accesses below are NOT real data races under `go test -race` — only
// the annotation stream is racy.
package racykernels

import (
	"context"

	"crono/internal/exec"
)

// SharedCounter increments one shared counter from every thread with
// plain annotations and no lock: the classic unlocked read-modify-write.
// Every pair of threads races on counter[0] with read/write and
// write/write conflicts.
func SharedCounter(pl exec.Platform, threads, incs int) (int, *exec.Report, error) {
	counter := 0
	r := pl.Alloc("racy.counter", 1, 8)
	rep, err := pl.RunCtx(context.Background(), threads, func(ctx exec.Ctx) {
		for i := 0; i < incs; i++ {
			ctx.Load(r.At(0))
			v := counter
			ctx.Compute(1)
			ctx.Store(r.At(0))
			counter = v + 1
		}
	})
	return counter, rep, err
}

// MissingBarrier writes per-thread chunks of a shared array and then
// reads the next thread's chunk without an intervening barrier: the
// classic forgotten phase separation. Every cross-chunk read races with
// the owning thread's initializing write.
func MissingBarrier(pl exec.Platform, threads, perThread int) ([]int32, *exec.Report, error) {
	n := threads * perThread
	data := make([]int32, n)
	out := make([]int32, n)
	r := pl.Alloc("racy.data", n, 4)
	rep, err := pl.RunCtx(context.Background(), threads, func(ctx exec.Ctx) {
		tid := ctx.TID()
		lo := tid * perThread
		for i := 0; i < perThread; i++ {
			data[lo+i] = int32(lo + i)
			ctx.Store(r.At(lo + i))
		}
		// BUG: a ctx.Barrier belongs here.
		nlo := ((tid + 1) % threads) * perThread
		for i := 0; i < perThread; i++ {
			ctx.Load(r.At(nlo + i))
			out[nlo+i] = data[nlo+i]
		}
	})
	return out, rep, err
}

// FixedCounter is SharedCounter with the lock it was missing; the
// detector must report nothing for it.
func FixedCounter(pl exec.Platform, threads, incs int) (int, *exec.Report, error) {
	counter := 0
	r := pl.Alloc("fixed.counter", 1, 8)
	l := pl.NewLock()
	rep, err := pl.RunCtx(context.Background(), threads, func(ctx exec.Ctx) {
		for i := 0; i < incs; i++ {
			ctx.Lock(l)
			ctx.Load(r.At(0))
			v := counter
			ctx.Compute(1)
			ctx.Store(r.At(0))
			counter = v + 1
			ctx.Unlock(l)
		}
	})
	return counter, rep, err
}

// FixedBarrier is MissingBarrier with the barrier restored; the
// detector must report nothing for it.
func FixedBarrier(pl exec.Platform, threads, perThread int) ([]int32, *exec.Report, error) {
	n := threads * perThread
	data := make([]int32, n)
	out := make([]int32, n)
	r := pl.Alloc("fixed.data", n, 4)
	bar := pl.NewBarrier(threads)
	rep, err := pl.RunCtx(context.Background(), threads, func(ctx exec.Ctx) {
		tid := ctx.TID()
		lo := tid * perThread
		for i := 0; i < perThread; i++ {
			data[lo+i] = int32(lo + i)
			ctx.Store(r.At(lo + i))
		}
		ctx.Barrier(bar)
		nlo := ((tid + 1) % threads) * perThread
		for i := 0; i < perThread; i++ {
			ctx.Load(r.At(nlo + i))
			out[nlo+i] = data[nlo+i]
		}
	})
	return out, rep, err
}

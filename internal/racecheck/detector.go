package racecheck

import (
	"crono/internal/exec"
)

// vclock is a vector clock indexed by thread id. Clocks are grown on
// demand; a missing entry reads as zero.
type vclock []uint64

func (c vclock) get(t int) uint64 {
	if t < len(c) {
		return c[t]
	}
	return 0
}

func (c *vclock) grow(n int) {
	for len(*c) < n {
		*c = append(*c, 0)
	}
}

// merge folds o into c element-wise (c := c ⊔ o).
func (c *vclock) merge(o vclock) {
	c.grow(len(o))
	for i, v := range o {
		if v > (*c)[i] {
			(*c)[i] = v
		}
	}
}

// assign copies o into c (c := o).
func (c *vclock) assign(o vclock) {
	*c = append((*c)[:0], o...)
}

// shadowWord is the per-address access history: the last write and the
// last read per thread since that write, FastTrack style.
type shadowWord struct {
	write accessRec // tid < 0 when no write recorded yet
	reads []accessRec
}

// defaultMaxRaces caps recorded races so a hot racy loop cannot balloon
// memory; distinct race *sites* are deduplicated before the cap matters.
const defaultMaxRaces = 100

// detector is the FastTrack-style happens-before engine. It is not
// safe for concurrent use: the standalone scheduler serializes calls by
// construction and the Wrap proxy holds a mutex around every operation.
//
// Clock state (threads, locks, barrier and address synchronization
// clocks, shadow words) is per run and reset by beginRun; detected races
// accumulate across runs on the owning platform.
type detector struct {
	table    *exec.RegionTable
	maxRaces int

	threads int
	clocks  []vclock              // per-thread clock C[t]
	locks   map[exec.Lock]*vclock // per-lock release clock L[l]
	sync    map[exec.Addr]*vclock // per-address atomic release clock A[a]
	shadow  map[exec.Addr]*shadowWord

	races []rawRace
	seen  map[raceKey]bool

	// aborted is set when a run is cooperatively canceled. From then on
	// accesses are not recorded and races are not reported: an abort
	// releases barrier waiters without the barrier's clock join, so
	// accesses made while unwinding are unordered by construction and
	// would otherwise surface as phantom races.
	aborted bool
}

func newDetector(table *exec.RegionTable) *detector {
	return &detector{
		table:    table,
		maxRaces: defaultMaxRaces,
		seen:     make(map[raceKey]bool),
	}
}

// beginRun resets per-run clock state for a run of the given width.
// Thread clocks start at 1 so a zero epoch always means "never".
func (d *detector) beginRun(threads int) {
	d.threads = threads
	d.clocks = make([]vclock, threads)
	for t := range d.clocks {
		c := make(vclock, threads)
		c[t] = 1
		d.clocks[t] = c
	}
	d.locks = make(map[exec.Lock]*vclock)
	d.sync = make(map[exec.Addr]*vclock)
	d.shadow = make(map[exec.Addr]*shadowWord)
	d.aborted = false
}

func (d *detector) word(a exec.Addr) *shadowWord {
	w := d.shadow[a]
	if w == nil {
		w = &shadowWord{reads: make([]accessRec, d.threads)}
		w.write.tid = -1
		for i := range w.reads {
			w.reads[i].tid = -1
		}
		d.shadow[a] = w
	}
	return w
}

func (d *detector) report(a exec.Addr, prior, current accessRec) {
	key := raceKey{
		addr:         a,
		priorPC:      prior.pc,
		currentPC:    current.pc,
		priorWrite:   prior.write,
		currentWrite: current.write,
	}
	if d.seen[key] || len(d.races) >= d.maxRaces {
		return
	}
	d.seen[key] = true
	d.races = append(d.races, rawRace{addr: a, prior: prior, current: current})
}

// ordered reports whether the recorded access rec happens-before thread
// tid's current point.
func (d *detector) ordered(tid int, rec accessRec) bool {
	return rec.clock <= d.clocks[tid].get(rec.tid)
}

// read checks and records a read of a by tid.
func (d *detector) read(tid int, a exec.Addr, pc uintptr, atomic bool) {
	if d.aborted {
		return
	}
	w := d.word(a)
	cur := accessRec{tid: tid, clock: d.clocks[tid][tid], pc: pc, atomic: atomic}
	if lw := w.write; lw.tid >= 0 && lw.tid != tid && !d.ordered(tid, lw) && !(atomic && lw.atomic) {
		d.report(a, lw, cur)
	}
	w.reads[tid] = cur
}

// write checks and records a write of a by tid. Reads recorded before
// the write are cleared: later conflicts are checked against the write,
// which dominates them.
func (d *detector) write(tid int, a exec.Addr, pc uintptr, atomic bool) {
	if d.aborted {
		return
	}
	w := d.word(a)
	cur := accessRec{tid: tid, clock: d.clocks[tid][tid], pc: pc, atomic: atomic, write: true}
	if lw := w.write; lw.tid >= 0 && lw.tid != tid && !d.ordered(tid, lw) && !(atomic && lw.atomic) {
		d.report(a, lw, cur)
	}
	for t := range w.reads {
		lr := w.reads[t]
		if lr.tid >= 0 && t != tid && !d.ordered(tid, lr) && !(atomic && lr.atomic) {
			d.report(a, lr, cur)
		}
		w.reads[t].tid = -1
	}
	w.write = cur
}

// span applies read or write to each element of a span annotation.
func (d *detector) span(tid int, a exec.Addr, elems, elemSize int, pc uintptr, isWrite bool) {
	if d.aborted {
		return
	}
	for i := 0; i < elems; i++ {
		addr := a + exec.Addr(i)*exec.Addr(elemSize)
		if isWrite {
			d.write(tid, addr, pc, false)
		} else {
			d.read(tid, addr, pc, false)
		}
	}
}

// acquireAddr merges the address synchronization clock into tid's clock:
// the acquire half of an atomic operation on a.
func (d *detector) acquireAddr(tid int, a exec.Addr) {
	if d.aborted {
		return
	}
	if ac := d.sync[a]; ac != nil {
		d.clocks[tid].merge(*ac)
	}
}

// releaseAddr merges tid's clock into the address synchronization clock
// and ticks tid: the release half of an atomic operation on a.
func (d *detector) releaseAddr(tid int, a exec.Addr) {
	if d.aborted {
		return
	}
	ac := d.sync[a]
	if ac == nil {
		ac = &vclock{}
		d.sync[a] = ac
	}
	ac.merge(d.clocks[tid])
	d.clocks[tid][tid]++
}

// lockAcquire merges the lock's release clock into tid's clock.
func (d *detector) lockAcquire(tid int, l exec.Lock) {
	if d.aborted {
		return
	}
	if lc := d.locks[l]; lc != nil {
		d.clocks[tid].merge(*lc)
	}
}

// lockRelease copies tid's clock into the lock's release clock and
// ticks tid.
func (d *detector) lockRelease(tid int, l exec.Lock) {
	if d.aborted {
		return
	}
	lc := d.locks[l]
	if lc == nil {
		lc = &vclock{}
		d.locks[l] = lc
	}
	lc.assign(d.clocks[tid])
	d.clocks[tid][tid]++
}

// barrierJoin computes the join of the participants' clocks.
func (d *detector) barrierJoin(parties []int) vclock {
	var joined vclock
	for _, t := range parties {
		joined.merge(d.clocks[t])
	}
	return joined
}

// barrierLeave redistributes a completed barrier's joined clock to one
// participant and ticks it. Not called on the abort path: aborted
// barrier generations contribute no happens-before edges.
func (d *detector) barrierLeave(tid int, joined vclock) {
	if d.aborted {
		return
	}
	d.clocks[tid].assign(joined)
	d.clocks[tid].grow(tid + 1)
	d.clocks[tid][tid]++
}

// abort stops recording: see the aborted field.
func (d *detector) abort() { d.aborted = true }

package racecheck

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"crono/internal/exec"
)

// Platform is the standalone checking platform: a deterministic
// cooperative scheduler that runs one thread at a time, interleaving
// threads round-robin at every annotation. Determinism makes race
// reports reproducible and golden-testable: a given kernel, input and
// thread count always produce the same interleaving, so the same races.
//
// A Platform accumulates races across runs; clock state is per run.
// It is not safe for concurrent RunCtx calls.
type Platform struct {
	nextAddr exec.Addr
	table    *exec.RegionTable
	det      *detector
}

// New returns a standalone deterministic checking platform.
func New() *Platform {
	table := &exec.RegionTable{}
	return &Platform{
		nextAddr: exec.LineSize,
		table:    table,
		det:      newDetector(table),
	}
}

// Name implements exec.Platform.
func (p *Platform) Name() string { return "racecheck" }

// Races returns the races detected so far, deduplicated by site pair
// and sorted for stable output.
func (p *Platform) Races() []Race { return resolveRaces(p.det.races, p.table) }

// Table exposes the region table (for diagnostics).
func (p *Platform) Table() *exec.RegionTable { return p.table }

// Alloc implements exec.Platform with a line-aligned bump allocator and
// registers the region for address-to-name resolution in reports.
func (p *Platform) Alloc(name string, elems, elemSize int) exec.Region {
	if elems < 0 || elemSize <= 0 {
		panic(fmt.Sprintf("racecheck: bad Alloc(%q, %d, %d)", name, elems, elemSize))
	}
	r := exec.Region{
		Name:     name,
		Base:     p.nextAddr,
		ElemSize: uint64(elemSize),
		Elems:    uint64(elems),
	}
	size := r.Bytes()
	size = (size + exec.LineSize - 1) / exec.LineSize * exec.LineSize
	if size == 0 {
		size = exec.LineSize
	}
	p.nextAddr += size
	p.table.Add(r)
	return r
}

type schedLock struct {
	holder  int
	waiters []int
}

// NewLock implements exec.Platform.
func (p *Platform) NewLock() exec.Lock { return &schedLock{holder: -1} }

type schedBarrier struct {
	parties int
	waiting []int
}

// NewBarrier implements exec.Platform.
func (p *Platform) NewBarrier(parties int) exec.Barrier {
	if parties < 1 {
		panic("racecheck: barrier needs at least one party")
	}
	return &schedBarrier{parties: parties}
}

// Run implements exec.Platform.
func (p *Platform) Run(threads int, body func(exec.Ctx)) *exec.Report {
	rep, err := p.RunCtx(context.Background(), threads, body)
	if err != nil {
		panic(fmt.Sprintf("racecheck: background run failed: %v", err))
	}
	return rep
}

type evKind int

const (
	evYield evKind = iota
	evLock
	evUnlock
	evBarrier
	evCheckpoint
	evDone
)

type event struct {
	tid  int
	kind evKind
	lock *schedLock
	bar  *schedBarrier
}

type threadState int

const (
	tsRunnable threadState = iota
	tsBlocked
	tsDone
)

// srun is one RunCtx execution: the scheduler state shared between the
// scheduler loop (running on the caller's goroutine) and the thread
// goroutines. Exactly one goroutine is ever unparked, so no field needs
// a mutex.
type srun struct {
	p       *Platform
	goCtx   context.Context
	threads int

	events chan event
	resume []chan struct{}
	reply  []error // Checkpoint return value, written before resume

	state    []threadState
	instr    []uint64
	barriers []*schedBarrier // barriers with waiters, for abort release
	runErr   error
}

type sctx struct {
	run *srun
	tid int
}

// callerPC captures the kernel's annotation call site: the caller of
// the exec.Ctx method invoking this helper.
func callerPC() uintptr {
	pc, _, _, _ := runtime.Caller(2)
	return pc
}

// RunCtx implements exec.Platform. The scheduler runs on the calling
// goroutine: it parks every kernel thread and hands the single
// execution token to one thread at a time, round-robin, taking it back
// at each annotation. Cancellation follows the exec contract: the next
// Checkpoint after goCtx is canceled returns the error, all barrier
// waiters are released (without the barrier's happens-before join — an
// aborted generation synchronizes nothing), and RunCtx reports
// (nil, ctx.Err()).
func (p *Platform) RunCtx(goCtx context.Context, threads int, body func(exec.Ctx)) (*exec.Report, error) {
	if threads < 1 {
		return nil, fmt.Errorf("racecheck: threads %d < 1", threads)
	}
	p.det.beginRun(threads)
	r := &srun{
		p:       p,
		goCtx:   goCtx,
		threads: threads,
		events:  make(chan event),
		resume:  make([]chan struct{}, threads),
		reply:   make([]error, threads),
		state:   make([]threadState, threads),
		instr:   make([]uint64, threads),
	}
	for t := 0; t < threads; t++ {
		r.resume[t] = make(chan struct{})
		go func(t int) {
			<-r.resume[t]
			body(&sctx{run: r, tid: t})
			r.events <- event{tid: t, kind: evDone}
		}(t)
	}

	start := time.Now()
	if err := r.schedule(); err != nil {
		return nil, err
	}
	if r.runErr != nil {
		return nil, r.runErr
	}
	elapsed := uint64(time.Since(start))
	return &exec.Report{
		Platform:     p.Name(),
		Threads:      threads,
		Time:         elapsed,
		HostNs:       elapsed,
		Instructions: r.instr,
		ThreadTime:   make([]uint64, threads),
	}, nil
}

// schedule is the round-robin scheduler loop. It returns a non-nil
// error only for scheduler-level failures (deadlock); cooperative
// cancellation is reported through srun.runErr.
func (r *srun) schedule() error {
	done := 0
	next := 0
	for done < r.threads {
		tid, ok := r.pick(next)
		if !ok {
			return r.deadlock()
		}
		next = (tid + 1) % r.threads
		r.resume[tid] <- struct{}{}
		ev := <-r.events
		switch ev.kind {
		case evYield:
			// Nothing to do: the detector work happened on the thread
			// while it held the token.
		case evLock:
			if ev.lock.holder < 0 {
				ev.lock.holder = ev.tid
				r.p.det.lockAcquire(ev.tid, exec.Lock(ev.lock))
			} else {
				ev.lock.waiters = append(ev.lock.waiters, ev.tid)
				r.state[ev.tid] = tsBlocked
			}
		case evUnlock:
			if ev.lock.holder != ev.tid {
				return fmt.Errorf("racecheck: T%d unlocks a lock held by T%d", ev.tid, ev.lock.holder)
			}
			r.p.det.lockRelease(ev.tid, exec.Lock(ev.lock))
			if len(ev.lock.waiters) > 0 {
				u := ev.lock.waiters[0]
				ev.lock.waiters = ev.lock.waiters[1:]
				ev.lock.holder = u
				r.p.det.lockAcquire(u, exec.Lock(ev.lock))
				r.state[u] = tsRunnable
			} else {
				ev.lock.holder = -1
			}
		case evBarrier:
			if r.runErr != nil {
				break // post-abort barriers return immediately
			}
			ev.bar.waiting = append(ev.bar.waiting, ev.tid)
			if len(ev.bar.waiting) == 1 {
				r.barriers = append(r.barriers, ev.bar)
			}
			if len(ev.bar.waiting) == ev.bar.parties {
				joined := r.p.det.barrierJoin(ev.bar.waiting)
				for _, u := range ev.bar.waiting {
					r.p.det.barrierLeave(u, joined)
					r.state[u] = tsRunnable
				}
				ev.bar.waiting = ev.bar.waiting[:0]
			} else {
				r.state[ev.tid] = tsBlocked
			}
		case evCheckpoint:
			err := r.runErr
			if err == nil {
				if err = r.goCtx.Err(); err != nil {
					r.abort(err)
				}
			}
			r.reply[ev.tid] = err
		case evDone:
			r.state[ev.tid] = tsDone
			done++
		}
	}
	return nil
}

// abort records the cooperative cancellation: the detector stops
// recording and every barrier waiter is released without a clock join.
func (r *srun) abort(err error) {
	r.runErr = err
	r.p.det.abort()
	for _, b := range r.barriers {
		for _, u := range b.waiting {
			r.state[u] = tsRunnable
		}
		b.waiting = b.waiting[:0]
	}
}

// pick returns the first runnable thread at or after from, wrapping.
func (r *srun) pick(from int) (int, bool) {
	for i := 0; i < r.threads; i++ {
		t := (from + i) % r.threads
		if r.state[t] == tsRunnable {
			return t, true
		}
	}
	return 0, false
}

// deadlock formats the stuck-thread state. The blocked goroutines are
// abandoned; this only happens for kernels with a real synchronization
// bug, and the error fails the surrounding test or CLI run anyway.
func (r *srun) deadlock() error {
	blocked := []int{}
	for t, s := range r.state {
		if s == tsBlocked {
			blocked = append(blocked, t)
		}
	}
	return fmt.Errorf("racecheck: deadlock, threads %v blocked on locks or barriers", blocked)
}

// yield hands the token back to the scheduler and waits to be
// rescheduled.
func (c *sctx) yield(ev event) {
	ev.tid = c.tid
	c.run.events <- ev
	<-c.run.resume[c.tid]
}

func (c *sctx) TID() int     { return c.tid }
func (c *sctx) Threads() int { return c.run.threads }

func (c *sctx) Load(a exec.Addr) {
	c.run.instr[c.tid]++
	c.run.p.det.read(c.tid, a, callerPC(), false)
	c.yield(event{kind: evYield})
}

func (c *sctx) Store(a exec.Addr) {
	c.run.instr[c.tid]++
	c.run.p.det.write(c.tid, a, callerPC(), false)
	c.yield(event{kind: evYield})
}

func (c *sctx) AtomicLoad(a exec.Addr) {
	c.run.instr[c.tid]++
	d := c.run.p.det
	d.acquireAddr(c.tid, a)
	d.read(c.tid, a, callerPC(), true)
	c.yield(event{kind: evYield})
}

func (c *sctx) AtomicStore(a exec.Addr) {
	c.run.instr[c.tid]++
	d := c.run.p.det
	// A sequentially consistent atomic store is ordered after every
	// earlier atomic operation on the address, so it acquires as well
	// as releases.
	d.acquireAddr(c.tid, a)
	d.write(c.tid, a, callerPC(), true)
	d.releaseAddr(c.tid, a)
	c.yield(event{kind: evYield})
}

func (c *sctx) AtomicRMW(a exec.Addr) {
	c.run.instr[c.tid]++
	d := c.run.p.det
	d.acquireAddr(c.tid, a)
	d.write(c.tid, a, callerPC(), true)
	d.releaseAddr(c.tid, a)
	c.yield(event{kind: evYield})
}

func (c *sctx) LoadSpan(a exec.Addr, elems, elemSize int) {
	if elems <= 0 {
		return
	}
	c.run.instr[c.tid] += uint64(elems)
	c.run.p.det.span(c.tid, a, elems, elemSize, callerPC(), false)
	c.yield(event{kind: evYield})
}

func (c *sctx) StoreSpan(a exec.Addr, elems, elemSize int) {
	if elems <= 0 {
		return
	}
	c.run.instr[c.tid] += uint64(elems)
	c.run.p.det.span(c.tid, a, elems, elemSize, callerPC(), true)
	c.yield(event{kind: evYield})
}

func (c *sctx) Compute(n int) {
	if n > 0 {
		c.run.instr[c.tid] += uint64(n)
	}
	c.yield(event{kind: evYield})
}

func (c *sctx) Lock(l exec.Lock) {
	sl, ok := l.(*schedLock)
	if !ok {
		panic("racecheck: foreign lock handle")
	}
	c.run.instr[c.tid]++
	c.yield(event{kind: evLock, lock: sl})
}

func (c *sctx) Unlock(l exec.Lock) {
	sl, ok := l.(*schedLock)
	if !ok {
		panic("racecheck: foreign lock handle")
	}
	c.run.instr[c.tid]++
	c.yield(event{kind: evUnlock, lock: sl})
}

func (c *sctx) Barrier(b exec.Barrier) {
	sb, ok := b.(*schedBarrier)
	if !ok {
		panic("racecheck: foreign barrier handle")
	}
	c.yield(event{kind: evBarrier, bar: sb})
}

func (c *sctx) Checkpoint() error {
	c.yield(event{kind: evCheckpoint})
	return c.run.reply[c.tid]
}

func (c *sctx) Active(int) {}

package racecheck

import (
	"context"
	"fmt"
	"sync"

	"crono/internal/exec"
)

// Checker is a checking proxy around a real platform: annotations flow
// through the detector and then to the inner platform, so kernels run
// with the inner platform's timing (native speed, or the simulator's
// model) while the happens-before engine watches the access stream.
//
// Unlike the standalone Platform, interleavings under a wrapped native
// platform are whatever the Go scheduler produces, so which races are
// observed can vary run to run; absence of reported races is the
// meaningful, stable signal. A Checker accumulates races across runs.
type Checker struct {
	inner exec.Platform
	table *exec.RegionTable

	mu   sync.Mutex
	det  *detector
	bars map[exec.Barrier]*wrapBarrier
}

// wrapBarrier tracks the happens-before bookkeeping of one wrapped
// barrier. Arrivals merge their clocks into the pending join before
// blocking on the inner barrier; the last arrival completes the
// generation. A waiter that returns from the inner barrier with its
// generation incomplete was released by an abort: it takes no join.
type wrapBarrier struct {
	parties int
	arrived int
	gen     int
	pending vclock
	done    map[int]*wrapGeneration
}

type wrapGeneration struct {
	joined   vclock
	consumed int
}

// Wrap returns a checking proxy around inner.
func Wrap(inner exec.Platform) *Checker {
	table := &exec.RegionTable{}
	return &Checker{
		inner: inner,
		table: table,
		det:   newDetector(table),
		bars:  make(map[exec.Barrier]*wrapBarrier),
	}
}

// Name implements exec.Platform.
func (c *Checker) Name() string { return "racecheck+" + c.inner.Name() }

// Races returns the races detected so far, deduplicated and sorted.
func (c *Checker) Races() []Race {
	c.mu.Lock()
	defer c.mu.Unlock()
	return resolveRaces(c.det.races, c.table)
}

// Table exposes the region table (for diagnostics).
func (c *Checker) Table() *exec.RegionTable { return c.table }

// Alloc implements exec.Platform, registering the region for
// address-to-name resolution.
func (c *Checker) Alloc(name string, elems, elemSize int) exec.Region {
	r := c.inner.Alloc(name, elems, elemSize)
	c.table.Add(r)
	return r
}

// NewLock implements exec.Platform. The inner handle doubles as the
// detector's lock identity.
func (c *Checker) NewLock() exec.Lock { return c.inner.NewLock() }

// NewBarrier implements exec.Platform.
func (c *Checker) NewBarrier(parties int) exec.Barrier {
	b := c.inner.NewBarrier(parties)
	c.mu.Lock()
	c.bars[b] = &wrapBarrier{parties: parties, done: make(map[int]*wrapGeneration)}
	c.mu.Unlock()
	return b
}

// Run implements exec.Platform.
func (c *Checker) Run(threads int, body func(exec.Ctx)) *exec.Report {
	rep, err := c.RunCtx(context.Background(), threads, body)
	if err != nil {
		panic(fmt.Sprintf("racecheck: background run failed: %v", err))
	}
	return rep
}

// RunCtx implements exec.Platform: per-run clock state is reset, then
// the inner platform executes the wrapped body.
func (c *Checker) RunCtx(goCtx context.Context, threads int, body func(exec.Ctx)) (*exec.Report, error) {
	c.mu.Lock()
	c.det.beginRun(threads)
	for _, wb := range c.bars {
		wb.arrived = 0
		wb.gen = 0
		wb.pending = nil
		wb.done = make(map[int]*wrapGeneration)
	}
	c.mu.Unlock()
	return c.inner.RunCtx(goCtx, threads, func(ic exec.Ctx) {
		body(&wctx{inner: ic, c: c})
	})
}

type wctx struct {
	inner exec.Ctx
	c     *Checker
}

func (w *wctx) TID() int     { return w.inner.TID() }
func (w *wctx) Threads() int { return w.inner.Threads() }

func (w *wctx) Load(a exec.Addr) {
	pc := callerPC()
	w.c.mu.Lock()
	w.c.det.read(w.inner.TID(), a, pc, false)
	w.c.mu.Unlock()
	w.inner.Load(a)
}

func (w *wctx) Store(a exec.Addr) {
	pc := callerPC()
	w.c.mu.Lock()
	w.c.det.write(w.inner.TID(), a, pc, false)
	w.c.mu.Unlock()
	w.inner.Store(a)
}

func (w *wctx) AtomicLoad(a exec.Addr) {
	pc := callerPC()
	w.c.mu.Lock()
	tid := w.inner.TID()
	w.c.det.acquireAddr(tid, a)
	w.c.det.read(tid, a, pc, true)
	w.c.mu.Unlock()
	w.inner.AtomicLoad(a)
}

func (w *wctx) AtomicStore(a exec.Addr) {
	pc := callerPC()
	w.c.mu.Lock()
	tid := w.inner.TID()
	w.c.det.acquireAddr(tid, a)
	w.c.det.write(tid, a, pc, true)
	w.c.det.releaseAddr(tid, a)
	w.c.mu.Unlock()
	w.inner.AtomicStore(a)
}

func (w *wctx) AtomicRMW(a exec.Addr) {
	pc := callerPC()
	w.c.mu.Lock()
	tid := w.inner.TID()
	w.c.det.acquireAddr(tid, a)
	w.c.det.write(tid, a, pc, true)
	w.c.det.releaseAddr(tid, a)
	w.c.mu.Unlock()
	w.inner.AtomicRMW(a)
}

func (w *wctx) LoadSpan(a exec.Addr, elems, elemSize int) {
	pc := callerPC()
	w.c.mu.Lock()
	w.c.det.span(w.inner.TID(), a, elems, elemSize, pc, false)
	w.c.mu.Unlock()
	w.inner.LoadSpan(a, elems, elemSize)
}

func (w *wctx) StoreSpan(a exec.Addr, elems, elemSize int) {
	pc := callerPC()
	w.c.mu.Lock()
	w.c.det.span(w.inner.TID(), a, elems, elemSize, pc, true)
	w.c.mu.Unlock()
	w.inner.StoreSpan(a, elems, elemSize)
}

func (w *wctx) Compute(n int) { w.inner.Compute(n) }

// Lock forwards first and takes the happens-before edge after the inner
// lock is held, so the edge is ordered after the previous holder's
// release edge.
func (w *wctx) Lock(l exec.Lock) {
	w.inner.Lock(l)
	w.c.mu.Lock()
	w.c.det.lockAcquire(w.inner.TID(), l)
	w.c.mu.Unlock()
}

// Unlock takes the release edge before the inner unlock, for the same
// ordering reason.
func (w *wctx) Unlock(l exec.Lock) {
	w.c.mu.Lock()
	w.c.det.lockRelease(w.inner.TID(), l)
	w.c.mu.Unlock()
	w.inner.Unlock(l)
}

// Barrier merges this thread's clock into the generation's pending join
// before blocking on the inner barrier. The last arrival completes the
// generation; every waiter picks the joined clock up after the inner
// barrier releases it. A waiter whose generation never completed was
// released by an abort: it marks the detector aborted instead of taking
// a join, so unwinding accesses cannot surface as phantom races.
func (w *wctx) Barrier(b exec.Barrier) {
	tid := w.inner.TID()
	w.c.mu.Lock()
	wb := w.c.bars[b]
	if wb == nil {
		w.c.mu.Unlock()
		panic("racecheck: foreign barrier handle")
	}
	myGen := -1
	if !w.c.det.aborted {
		myGen = wb.gen
		wb.pending.merge(w.c.det.clocks[tid])
		wb.arrived++
		if wb.arrived == wb.parties {
			joined := make(vclock, len(wb.pending))
			copy(joined, wb.pending)
			wb.done[myGen] = &wrapGeneration{joined: joined}
			wb.pending = nil
			wb.arrived = 0
			wb.gen++
		}
	}
	w.c.mu.Unlock()

	w.inner.Barrier(b)

	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	if myGen < 0 {
		return
	}
	g := wb.done[myGen]
	if g == nil {
		// Released without the generation completing: the run aborted.
		w.c.det.abort()
		return
	}
	w.c.det.barrierLeave(tid, g.joined)
	g.consumed++
	if g.consumed == wb.parties {
		delete(wb.done, myGen)
	}
}

// Checkpoint forwards to the inner platform; a non-nil error marks the
// detector aborted so the unwind is not checked.
func (w *wctx) Checkpoint() error {
	err := w.inner.Checkpoint()
	if err != nil {
		w.c.mu.Lock()
		w.c.det.abort()
		w.c.mu.Unlock()
	}
	return err
}

func (w *wctx) Active(delta int) { w.inner.Active(delta) }

// This file documents the simulator's modeling assumptions in one place.
//
// # What is modeled
//
// The machine is the paper's Table II configuration: a tiled multicore on
// an electrical 2-D mesh. Each tile has a private L1-D tag array (32 KB,
// 4-way, true LRU), a slice of the shared inclusive NUCA L2 (256 KB,
// 8-way), and a router. Cache lines interleave across L2 home slices by
// line address; the directory (MESI with ACKWise-4 limited sharer
// pointers) lives with the home slice. Eight memory controllers sit at
// evenly spaced tiles, each with 5 GB/s of bandwidth and 100 ns latency.
//
// Every annotated data reference walks this model: L1 lookup; on a miss,
// a request packet to the home tile (XY-routed, link contention charged),
// per-line home serialization (L2Home-Waiting), the L2 access, an
// off-chip fill on an L2 miss (L2Home-OffChip), invalidation or
// write-back round trips to private sharers (L2Home-Sharers), and the
// data reply. The paper's completion-time components fall directly out
// of this walk.
//
// # Direct execution and lax synchronization
//
// Like Graphite, this is a direct-execution simulator: the benchmark's
// real Go code computes the real answer while its annotations drive the
// timing model, and cycle accuracy is deliberately relaxed. Each
// simulated thread owns a private virtual clock. Three rules keep the
// relaxation sound:
//
//  1. Shared hardware (links, controllers, hot lines, locks, the sync
//     manager) charges queueing from utilization statistics
//     (rho/(1-rho) * service/2, capped) rather than from a reservation
//     calendar. Reservation calendars are only correct when requests
//     arrive in nondecreasing time order, which lax clocks do not
//     guarantee; with one, a virtual-time front-runner blocks laggards
//     arriving "in its past" and the whole machine serializes.
//  2. Deterministic synchronization points reconcile clocks exactly: a
//     barrier releases every party at max(arrival) plus a cost linear in
//     the party count (a centralized barrier serializes one counter RMW
//     per arrival).
//  3. A window throttle (Config.WindowCycles) bounds how far any thread
//     may run ahead of the slowest runnable thread, so races for
//     dynamically distributed work (vertex capture, shared stacks) are
//     decided approximately in virtual-time order rather than by the
//     host's goroutine scheduler. Throttled threads wait with
//     exponential backoff: at 256 simulated threads on a small host,
//     fine-grained polling by hundreds of waiters would starve the very
//     laggard they wait for.
//
// # Synchronization cost model
//
// Graphite routes every pthread mutex and barrier operation as a network
// message to a centralized sync manager ("MCP") on tile 0, which
// services them serially. This simulator reproduces that: each
// Lock/Unlock is a round trip to tile 0 plus a serialized service slot
// (Config.MCPServiceCycles), with a backlog term when aggregate demand
// exceeds capacity. This serialization — not cache misses — is what caps
// the paper's lock-per-edge kernels (PageRank 5.37x, SSSP_DIJK 4.45x)
// while lock-free kernels (APSP 204x) scale; the reproduction inherits
// exactly that separation. Locks additionally perform an atomic RMW on
// their futex word's cache line, producing the coherence ping-pong and
// sharing misses of contended "atomic locks".
//
// # Out-of-order cores
//
// The OOO model hides a configurable fraction of L1Cache-L2Home and
// off-chip stall time (memory-level parallelism within the 168-entry
// ROB) and none of the home serialization, sharer invalidation or
// synchronization time — encoding the paper's Section V-G conclusion
// that OOO cores cannot hide on-chip communication.
//
// # Known simplifications
//
//   - The L1-I cache is not simulated structurally; instruction fetches
//     are charged energy per instruction and assumed to hit (the kernels'
//     code footprints are a few hundred bytes).
//   - Store visibility is modeled at line granularity with no write
//     buffers or memory-consistency stalls beyond home serialization.
//   - Timing under real parallel execution is approximate: state such as
//     LRU order and utilization statistics evolves in host-scheduler
//     order. Single-threaded runs are bit-deterministic; multi-threaded
//     runs vary by a few percent, which the harness treats as noise
//     (the paper itself reports nondeterminism in graph analytics).
//   - The SMT/context-switch behavior of the paper's real machine
//     (Figure 9 at 16 threads on 8 hardware threads) is not modeled.
package sim

// Package sim implements the futuristic-multicore simulator platform: a
// direct-execution, lax-synchronization timing and dynamic-energy model of
// the Graphite configuration in Table II of the paper (256 tiles, private
// L1s, shared NUCA L2 with an ACKWise-4 MESI directory, electrical 2-D
// mesh with XY routing, 8 memory controllers).
//
// Like Graphite, the simulator relaxes cycle accuracy for speed: each
// simulated thread advances a private virtual clock through the detailed
// memory-system model and clocks reconcile at locks and barriers.
package sim

import (
	"fmt"

	"crono/internal/energy"
	"crono/internal/noc"
)

// CoreType selects the compute pipeline model of Table II.
type CoreType int

const (
	// InOrder is the single-issue in-order pipeline (default).
	InOrder CoreType = iota
	// OutOfOrder is the single-issue OOO pipeline with a 168-entry ROB
	// and 64/48 load/store queues. The model lets it overlap a
	// configurable fraction of L1Cache-L2Home and off-chip latency with
	// execution, but — matching the paper's Section V-G finding — none
	// of the coherence serialization (L2Home-Waiting, L2Home-Sharers)
	// or synchronization time.
	OutOfOrder
)

// String names the core type.
func (c CoreType) String() string {
	if c == OutOfOrder {
		return "out-of-order"
	}
	return "in-order"
}

// Config mirrors Table II ("Graphite architectural parameters").
type Config struct {
	// Cores is the tile count; must be a perfect square (256 = 16x16).
	Cores int
	// ClockHz is the core clock (1 GHz).
	ClockHz float64

	// Core model.
	CoreType CoreType
	// ROBSize and load/store queue sizes document the OOO setup.
	ROBSize, LoadQueue, StoreQueue int
	// OOOHideFraction is the fraction of L1Cache-L2Home and
	// L2Home-OffChip stall cycles the OOO pipeline overlaps with
	// execution.
	OOOHideFraction float64

	// Memory subsystem.
	L1ISizeB, L1IWays    int
	L1DSizeB, L1DWays    int
	L1LatencyCycles      uint64
	L2SliceSizeB, L2Ways int
	L2LatencyCycles      uint64
	LineBytes            int
	DirPointers          int // ACKWise sharer pointers

	// Off-chip memory.
	MemControllers  int
	DRAMBandwidthBs float64 // per controller
	DRAMLatencyNs   float64

	// Network (electrical 2-D mesh, XY routing, link contention only).
	HopCycles uint64
	FlitBits  int
	// CtrlPacketBits is the size of request/ack packets; data replies
	// carry CtrlPacketBits + 8*LineBytes.
	CtrlPacketBits int
	// Routing selects the mesh routing policy (Section VII-B discusses
	// oblivious routing as a contention-reduction technique).
	Routing noc.Routing

	// WindowCycles bounds how far any thread's virtual clock may run
	// ahead of the slowest runnable thread (Graphite's lax-synchronization
	// quantum). Without it, real-time goroutine scheduling lets one
	// simulated thread grab most dynamically distributed work (vertex
	// capture, shared stacks) before its virtually-concurrent peers run.
	WindowCycles uint64

	// MCPServiceCycles is the serialized processing cost of one
	// synchronization operation at the centralized sync manager.
	// Graphite routes every pthread mutex/barrier operation as a network
	// message to a Master Control Program on tile 0 that services them
	// one at a time; this serialization is the first-order reason the
	// paper's lock-heavy kernels (PageRank, SSSP_DIJK, TRI_CNT) stop
	// scaling while lock-free ones (APSP, BETW_CENT) reach 200x.
	MCPServiceCycles uint64

	// HeteroMasterOOO gives core 0 (the master thread's core) an
	// out-of-order pipeline while the rest stay in-order — the
	// heterogeneous design point of Section VII-B ("speeding up master
	// threads using out-of-order cores").
	HeteroMasterOOO bool

	// NextLinePrefetch enables a next-line L1 prefetcher, one of the
	// real-machine optimizations Section VI contrasts with the simulated
	// futuristic multicore ("data prefetching to reduce off-chip
	// bandwidth limitations").
	NextLinePrefetch bool

	// LocalityAware enables the Section VII locality-aware coherence
	// ablation: a line is not allocated in the private L1 until a core
	// has touched it LocalityThreshold times; colder accesses are served
	// remotely at the home L2 with a word-granularity round trip. The
	// per-line touch counters are 8-bit, so the threshold must lie in
	// [1, 255] (Validate enforces this).
	LocalityAware     bool
	LocalityThreshold int

	// SerialMemory reinstates the pre-sharding global memory-system lock:
	// every simulated memory reference and MCP transaction serializes
	// behind one mutex, regardless of which core or home tile it touches.
	// Model outputs are unchanged — only host-side parallelism is lost.
	// It exists as the in-tree baseline for simulator-throughput
	// comparisons (crono-bench -mode sim); leave it off otherwise.
	SerialMemory bool

	// Energy is the 11 nm per-event energy model.
	Energy energy.Model
}

// Default returns the Table II configuration.
func Default() Config {
	return Config{
		Cores:           256,
		ClockHz:         1e9,
		CoreType:        InOrder,
		ROBSize:         168,
		LoadQueue:       64,
		StoreQueue:      48,
		OOOHideFraction: 0.7,
		L1ISizeB:        32 << 10, L1IWays: 4,
		L1DSizeB: 32 << 10, L1DWays: 4,
		L1LatencyCycles: 1,
		L2SliceSizeB:    256 << 10, L2Ways: 8,
		L2LatencyCycles:   8,
		LineBytes:         64,
		DirPointers:       4,
		MemControllers:    8,
		DRAMBandwidthBs:   5e9,
		DRAMLatencyNs:     100,
		HopCycles:         2,
		FlitBits:          64,
		CtrlPacketBits:    72,
		WindowCycles:      50_000,
		MCPServiceCycles:  10,
		LocalityAware:     false,
		LocalityThreshold: 4,
		Energy:            energy.Default11nm(),
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: cores %d", c.Cores)
	}
	if c.LineBytes != 64 {
		// Regions and the exec address math assume 64-byte lines.
		return fmt.Errorf("sim: line size %d unsupported (want 64)", c.LineBytes)
	}
	if c.MemControllers < 1 || c.MemControllers > c.Cores {
		return fmt.Errorf("sim: %d memory controllers for %d cores", c.MemControllers, c.Cores)
	}
	if c.OOOHideFraction < 0 || c.OOOHideFraction > 1 {
		return fmt.Errorf("sim: OOO hide fraction %g out of [0,1]", c.OOOHideFraction)
	}
	if c.DirPointers < 1 {
		return fmt.Errorf("sim: directory pointers %d", c.DirPointers)
	}
	if c.LocalityAware && (c.LocalityThreshold < 1 || c.LocalityThreshold > 255) {
		// The reuse counters are uint8: a threshold past 255 could never
		// be reached (the counter saturates below it), silently pinning
		// every access to remote service.
		return fmt.Errorf("sim: locality threshold %d out of [1, 255]", c.LocalityThreshold)
	}
	return nil
}

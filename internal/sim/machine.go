package sim

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crono/internal/cache"
	"crono/internal/coherence"
	"crono/internal/dram"
	"crono/internal/energy"
	"crono/internal/exec"
	"crono/internal/noc"
)

// activeTracePoints caps the length of the reconstructed active-vertex
// trace returned in reports.
const activeTracePoints = 2048

// Line dispositions for miss classification (Section IV-D).
const (
	dispEvicted     = 1 // previously evicted for room -> capacity miss
	dispInvalidated = 2 // invalidated/downgraded by another core -> sharing miss
	dispPresent     = 3 // currently (or last known) resident
)

// Machine is the simulated multicore. Create one per experiment run with
// New; it implements exec.Platform.
type Machine struct {
	cfg  Config
	mesh *noc.Mesh
	dir  *coherence.Dir

	mu     sync.Mutex // guards all shared model state below
	l1     []*cache.Cache
	l2     []*cache.Cache
	mcs    []*dram.Controller
	mcTile []int
	lines  map[uint64]*lineStat // per-line home-serialization stats
	disp   []map[uint64]byte    // per-core line dispositions
	reuse  []map[uint64]uint8
	extra  energy.Counter // events not tied to one thread (write-backs)

	allocMu   sync.Mutex
	allocNext exec.Addr

	mcpBusy    uint64 // cumulative MCP service demand (guarded by mu)
	mcpHorizon uint64

	// Lax-synchronization window state: published per-thread virtual
	// clocks (blockedClock while waiting on real synchronization) and a
	// cached minimum. See ctx.throttle.
	nows   []atomic.Uint64
	winMin atomic.Uint64

	dbgThrottleSlow  atomic.Uint64
	dbgThrottleSleep atomic.Uint64

	// run is the cancellation state of the in-flight parallel region.
	// A Machine executes one Run at a time (Run resets nows/winMin), so a
	// plain field suffices.
	run *runControl

	lineBits       uint
	barrierArrival uint64 // serialized cost per barrier arrival
	barrierRelease uint64 // barrier release broadcast cost
}

var _ exec.Platform = (*Machine)(nil)

// runControl carries one run's cooperative-cancellation state: the run
// context polled by Checkpoint and an abort channel, closed once, that
// releases barrier waiters and throttle sleepers when the run dies.
type runControl struct {
	cause context.Context
	abort chan struct{}
	once  sync.Once
}

func (rc *runControl) trip() { rc.once.Do(func() { close(rc.abort) }) }

// New builds a machine from cfg (use Default() for Table II).
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mesh, err := noc.New(cfg.Cores, cfg.HopCycles, cfg.FlitBits)
	if err != nil {
		return nil, err
	}
	mesh.SetRouting(cfg.Routing)
	dir, err := coherence.New(cfg.DirPointers, cfg.Cores)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:      cfg,
		mesh:     mesh,
		dir:      dir,
		l1:       make([]*cache.Cache, cfg.Cores),
		l2:       make([]*cache.Cache, cfg.Cores),
		mcs:      make([]*dram.Controller, cfg.MemControllers),
		mcTile:   make([]int, cfg.MemControllers),
		lines:    make(map[uint64]*lineStat),
		disp:     make([]map[uint64]byte, cfg.Cores),
		reuse:    make([]map[uint64]uint8, cfg.Cores),
		lineBits: 6,
	}
	for c := 0; c < cfg.Cores; c++ {
		if m.l1[c], err = cache.New(cfg.L1DSizeB, cfg.L1DWays, cfg.LineBytes); err != nil {
			return nil, err
		}
		if m.l2[c], err = cache.New(cfg.L2SliceSizeB, cfg.L2Ways, cfg.LineBytes); err != nil {
			return nil, err
		}
		m.disp[c] = make(map[uint64]byte)
		if cfg.LocalityAware {
			m.reuse[c] = make(map[uint64]uint8)
		}
	}
	for i := 0; i < cfg.MemControllers; i++ {
		if m.mcs[i], err = dram.New(cfg.ClockHz, cfg.DRAMBandwidthBs, cfg.DRAMLatencyNs); err != nil {
			return nil, err
		}
		// Controllers sit at evenly spaced edge tiles.
		m.mcTile[i] = i * cfg.Cores / cfg.MemControllers
	}
	// Per-arrival barrier cost: a centralized shared-memory barrier
	// serializes one atomic RMW on its counter line per arriving thread
	// (a round trip to the line's home plus the L2 access), so barrier
	// latency grows linearly with the party count — a first-order source
	// of the paper's synchronization wall at 256 threads.
	m.barrierArrival = m.avgRoundTrip() + cfg.MCPServiceCycles
	// The release broadcast crosses the mesh once.
	m.barrierRelease = uint64(mesh.Diameter())*cfg.HopCycles + 20
	return m, nil
}

// placeThread spreads t threads evenly over the 2-D mesh: thread tid
// occupies a cell of a tw x th sub-grid scaled onto the full mesh.
// Clustering threads on the first tiles (or striding, which aliases into
// a few mesh columns) funnels their reply traffic through a handful of
// links and saturates them at intermediate thread counts.
func (m *Machine) placeThread(tid, threads int) int {
	w := m.mesh.Width
	if threads >= m.cfg.Cores {
		return tid
	}
	tw := 1
	for tw*tw < threads {
		tw++
	}
	th := (threads + tw - 1) / tw
	gx, gy := tid%tw, tid/tw
	x := gx * w / tw
	y := gy * m.mesh.Height / th
	return y*w + x
}

// avgRoundTrip is the mean uncontended round-trip latency between two
// uniformly random tiles: the mean Manhattan distance on a WxW mesh is
// 2(W^2-1)/(3W).
func (m *Machine) avgRoundTrip() uint64 {
	w := float64(m.mesh.Width)
	meanHops := 2 * (w*w - 1) / (3 * w)
	return uint64(2*meanHops*float64(m.cfg.HopCycles) + 0.5)
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Name implements exec.Platform.
func (m *Machine) Name() string { return "sim" }

// Alloc implements exec.Platform with a line-aligned bump allocator;
// lines interleave across L2 home slices (NUCA).
func (m *Machine) Alloc(name string, elems, elemSize int) exec.Region {
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	if m.allocNext == 0 {
		m.allocNext = uint64(m.cfg.LineBytes)
	}
	base := m.allocNext
	bytes := uint64(elems) * uint64(elemSize)
	lb := uint64(m.cfg.LineBytes)
	bytes = (bytes + lb - 1) &^ (lb - 1)
	m.allocNext += bytes
	return exec.Region{Name: name, Base: base, ElemSize: uint64(elemSize), Elems: uint64(elems)}
}

func (m *Machine) home(line uint64) int { return int(line % uint64(m.cfg.Cores)) }

// l2Index maps a global line address to its slot within the home slice's
// tag array. Lines reaching a slice all share the same residue modulo the
// core count, so dividing by it removes the aliasing that would otherwise
// fold every line into the same few sets.
func (m *Machine) l2Index(line uint64) uint64 { return line / uint64(m.cfg.Cores) }

// l2Unindex reverses l2Index for a known home slice.
func (m *Machine) l2Unindex(idx uint64, home int) uint64 {
	return idx*uint64(m.cfg.Cores) + uint64(home)
}

func (m *Machine) controller(line uint64) int { return int(line % uint64(m.cfg.MemControllers)) }

// coreIsOOO reports whether the given core has the out-of-order pipeline:
// either the whole machine is OOO, or the heterogeneous design point puts
// one OOO core at tile 0 for the master thread (Section VII-B).
func (m *Machine) coreIsOOO(core int) bool {
	return m.cfg.CoreType == OutOfOrder || (m.cfg.HeteroMasterOOO && core == 0)
}

// lineStat tracks the cumulative home-tile occupancy of one cache line
// for the utilization-based L2Home-Waiting model: requests to the same
// line must serialize at the home to keep memory consistent, so a hot
// line charges a queueing delay proportional to its utilization.
type lineStat struct {
	busy    uint64 // cumulative transaction occupancy at the home
	horizon uint64 // latest virtual time observed
	count   uint64 // transactions served
}

func (m *Machine) lineStat(line uint64) *lineStat {
	ls := m.lines[line]
	if ls == nil {
		ls = &lineStat{}
		m.lines[line] = ls
	}
	return ls
}

// lineWait returns the L2Home-Waiting estimate for a request to line
// arriving at time t and updates the horizon.
func (ls *lineStat) lineWait(t uint64) uint64 {
	if t > ls.horizon {
		ls.horizon = t
	}
	if ls.count == 0 {
		return 0
	}
	return noc.QueueDelay(ls.busy, ls.horizon, ls.busy/ls.count)
}

type simLock struct {
	mu   sync.Mutex
	line uint64 // futex word; retained for the locality ablation
	// Utilization stats for the lax-safe hand-off wait model: a strict
	// "wait until the previous holder's release time" rule would let a
	// virtual-time front-runner drag every later acquirer up to its
	// clock even when they contend only in real time, not virtual time.
	busy       uint64 // cumulative held cycles
	horizon    uint64 // latest virtual time observed
	count      uint64 // completed critical sections
	acquiredAt uint64
}

// NewLock implements exec.Platform: each lock occupies its own cache
// line, so lock transfers generate the coherence ping-pong the paper
// attributes synchronization traffic to.
func (m *Machine) NewLock() exec.Lock {
	r := m.Alloc("lock", 1, m.cfg.LineBytes)
	return &simLock{line: r.Base >> m.lineBits}
}

type simBarrier struct {
	mu      sync.Mutex
	parties int
	cost    uint64
	gen     *barrierGen
}

// barrierGen is one barrier generation. The last arriver stamps release
// (the reconciled virtual time all parties resume at) and closes ch;
// waiters select on ch and on the run's abort channel, so a canceled run
// releases every waiter even when some parties already exited at a
// checkpoint and will never arrive.
type barrierGen struct {
	waiting int
	maxArr  uint64
	release uint64
	ch      chan struct{}
}

// NewBarrier implements exec.Platform.
func (m *Machine) NewBarrier(parties int) exec.Barrier {
	return &simBarrier{
		parties: parties,
		cost:    uint64(parties)*m.barrierArrival + m.barrierRelease,
		gen:     &barrierGen{ch: make(chan struct{})},
	}
}

// ctx is the per-thread simulation context. Its virtual clock (now)
// advances through the timing model; clocks reconcile at locks and
// barriers (lax synchronization).
type ctx struct {
	m       *Machine
	tid     int
	core    int
	threads int
	ops     uint32 // accesses since the last window check
	now     uint64
	brk     exec.Breakdown
	instr   uint64
	energy  energy.Counter
	stats   exec.CacheStats
	samples []exec.ActiveSample
}

var _ exec.Ctx = (*ctx)(nil)

// blockedClock marks a thread that is waiting on real synchronization (a
// barrier or a contended lock) or has finished; such threads are excluded
// from the window minimum, since they are waiting for the runnable ones.
const blockedClock = ^uint64(0)

// publish makes this thread's virtual clock visible to the window.
func (c *ctx) publish() { c.m.nows[c.tid].Store(c.now) }

// throttle bounds lax-synchronization clock skew: if this thread's
// virtual clock is more than WindowCycles ahead of the slowest runnable
// thread, it waits (in real time) for the laggards. Without this, the
// real Go scheduler decides who wins races for dynamically distributed
// work, letting one simulated thread complete vertex captures that its
// virtually-concurrent peers should have shared.
func (c *ctx) throttle() {
	m := c.m
	w := m.cfg.WindowCycles
	if w == 0 || c.threads == 1 {
		return
	}
	c.publish()
	if c.now <= m.winMin.Load()+w {
		return
	}
	m.dbgThrottleSlow.Add(1)
	// Exponential backoff: with hundreds of simulated threads on few
	// host CPUs, hundreds of waiters polling at a fixed fine interval
	// would starve the very laggard they are waiting for.
	backoff := 20 * time.Microsecond
	const maxBackoff = 5 * time.Millisecond
	for {
		select {
		case <-m.run.abort:
			// A dying run will never advance the laggards' clocks.
			return
		default:
		}
		min := blockedClock
		for t := range m.nows {
			if v := m.nows[t].Load(); v < min {
				min = v
			}
		}
		if min == blockedClock {
			return // everyone else is blocked or done
		}
		m.winMin.Store(min)
		if c.now <= min+w {
			return
		}
		m.dbgThrottleSleep.Add(1)
		time.Sleep(backoff)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// DebugThrottle reports window-throttle engagement counters.
func (m *Machine) DebugThrottle() (slowChecks, sleeps uint64) {
	return m.dbgThrottleSlow.Load(), m.dbgThrottleSleep.Load()
}

func (c *ctx) TID() int     { return c.tid }
func (c *ctx) Threads() int { return c.threads }

// Checkpoint implements exec.Ctx: a non-blocking poll of the run context.
// Simulated time is not charged; cancellation is a harness-control event,
// not part of the modeled kernel.
func (c *ctx) Checkpoint() error {
	rc := c.m.run
	if err := rc.cause.Err(); err != nil {
		rc.trip()
		return err
	}
	return nil
}

// Compute models n single-cycle pipeline instructions.
func (c *ctx) Compute(n int) {
	if n <= 0 {
		return
	}
	c.instr += uint64(n)
	c.energy.Instructions += uint64(n)
	c.now += uint64(n)
	c.brk[exec.CompCompute] += uint64(n)
}

func (c *ctx) Load(a exec.Addr)  { c.access(a, false) }
func (c *ctx) Store(a exec.Addr) { c.access(a, true) }

// LoadSpan implements exec.Ctx: one full cache transaction per touched
// line, plus single-cycle L1 hits for the remaining elements — exactly
// what per-element Load calls produce for a sequential scan, but without
// running the full model per element.
func (c *ctx) LoadSpan(a exec.Addr, elems, elemSize int) { c.span(a, elems, elemSize, false) }

// StoreSpan implements exec.Ctx, as LoadSpan for writes.
func (c *ctx) StoreSpan(a exec.Addr, elems, elemSize int) { c.span(a, elems, elemSize, true) }

func (c *ctx) span(a exec.Addr, elems, elemSize int, write bool) {
	if elems <= 0 || elemSize <= 0 {
		return
	}
	m := c.m
	lineBytes := uint64(m.cfg.LineBytes)
	end := a + uint64(elems)*uint64(elemSize)
	for cur := a; cur < end; {
		// Elements whose first byte falls in cur's line.
		lineEnd := (cur>>m.lineBits + 1) * lineBytes
		n := int((lineEnd - cur + uint64(elemSize) - 1) / uint64(elemSize))
		if rem := int((end - cur + uint64(elemSize) - 1) / uint64(elemSize)); n > rem {
			n = rem
		}
		c.access(cur, write) // full model once per line
		if n > 1 {
			extra := uint64(n - 1)
			c.instr += extra
			c.energy.Instructions += extra
			c.energy.L1DAccesses += extra
			c.stats.L1DAccesses += extra
			c.now += extra * m.cfg.L1LatencyCycles
			c.brk[exec.CompCompute] += extra * m.cfg.L1LatencyCycles
		}
		cur += uint64(n) * uint64(elemSize)
	}
}

// access runs one data reference through the full memory-system model.
func (c *ctx) access(addr exec.Addr, write bool) {
	m := c.m
	c.ops++
	if c.ops >= 256 {
		c.ops = 0
		c.throttle()
	}
	// Base pipeline cycle (includes the 1-cycle L1 hit, Table II).
	c.instr++
	c.energy.Instructions++
	c.now += m.cfg.L1LatencyCycles
	c.brk[exec.CompCompute] += m.cfg.L1LatencyCycles
	c.energy.L1DAccesses++
	c.stats.L1DAccesses++

	line := addr >> m.lineBits

	m.mu.Lock()
	defer m.mu.Unlock()

	st := m.l1[c.core].Lookup(line)
	if st != cache.Invalid && (!write || st == cache.Modified || st == cache.Exclusive) {
		if write && st == cache.Exclusive {
			// Silent E->M upgrade.
			m.l1[c.core].SetState(line, cache.Modified)
			m.dir.Write(line, c.core)
		}
		return
	}

	if m.cfg.LocalityAware && st == cache.Invalid {
		r := m.reuse[c.core]
		if int(r[line]) < m.cfg.LocalityThreshold {
			r[line]++
			c.remoteAccess(line, write)
			return
		}
	}

	if st == cache.Invalid {
		// True L1 miss: classify per Section IV-D.
		cl := exec.MissCold
		switch m.disp[c.core][line] {
		case dispEvicted:
			cl = exec.MissCapacity
		case dispInvalidated:
			cl = exec.MissSharing
		}
		c.stats.L1DMisses[cl]++
	}
	// st == Shared && write is an upgrade: not a miss, but it travels to
	// the home tile for invalidations like one.

	start := c.now
	home := m.home(line)

	// Request to the home tile.
	t, fh := m.mesh.Traverse(c.core, home, m.cfg.CtrlPacketBits, start)
	c.energy.FlitHops += uint64(fh)

	// Home serialization: requests to the same line queue up
	// (L2Home-Waiting).
	ls := m.lineStat(line)
	wait := ls.lineWait(t)
	busy := t + wait
	txnStart := busy

	// First L2 access + directory lookup.
	t = busy + m.cfg.L2LatencyCycles
	c.energy.L2Accesses++
	c.energy.DirAccesses++
	c.stats.L2Accesses++

	// Off-chip fill on L2 miss.
	var offchip uint64
	if m.l2[home].Lookup(m.l2Index(line)) == cache.Invalid {
		c.stats.L2Misses++
		t2 := c.fillFromDRAM(line, home, t)
		offchip = t2 - t
		t = t2
	}

	// Coherence actions (L2Home-Sharers).
	var act coherence.Action
	if write {
		act = m.dir.Write(line, c.core)
	} else {
		act = m.dir.Read(line, c.core)
	}
	sharers := c.applyCoherence(line, home, act, write)
	t += sharers

	// The home transaction completes; record its occupancy for later
	// requests to the same line.
	ls.busy += t - txnStart
	ls.count++

	// Data reply to the requester.
	dataBits := m.cfg.CtrlPacketBits + 8*m.cfg.LineBytes
	t4, fh := m.mesh.Traverse(home, c.core, dataBits, t)
	c.energy.FlitHops += uint64(fh)

	// Fill the private L1.
	grant := cache.Shared
	if write {
		grant = cache.Modified
	} else if m.dir.Owner(line) == c.core {
		grant = cache.Exclusive
	}
	if v, ok := m.l1[c.core].Insert(line, grant); ok {
		m.dir.Evict(v.Line, c.core)
		m.disp[c.core][v.Line] = dispEvicted
		if v.State == cache.Modified {
			c.writeBack(v.Line, c.core)
		}
	}
	m.disp[c.core][line] = dispPresent

	if m.cfg.NextLinePrefetch && !write {
		c.prefetchNextLine(line)
	}

	// Attribute the stall (lax virtual time).
	reqReply := (t4 - t) + (busy - start - wait) + m.cfg.L2LatencyCycles
	l1l2 := reqReply
	if m.coreIsOOO(c.core) {
		hideL := uint64(float64(l1l2) * m.cfg.OOOHideFraction)
		hideO := uint64(float64(offchip) * m.cfg.OOOHideFraction)
		l1l2 -= hideL
		offchip -= hideO
	}
	c.brk[exec.CompL1ToL2] += l1l2
	c.brk[exec.CompWaiting] += wait
	c.brk[exec.CompSharers] += sharers
	c.brk[exec.CompOffChip] += offchip
	c.now = start + l1l2 + wait + sharers + offchip
}

// fillFromDRAM fetches line into home's L2 slice starting at cycle t and
// returns the completion cycle. Caller holds m.mu.
func (c *ctx) fillFromDRAM(line uint64, home int, t uint64) uint64 {
	m := c.m
	mc := m.controller(line)
	ta, fh := m.mesh.Traverse(home, m.mcTile[mc], m.cfg.CtrlPacketBits, t)
	c.energy.FlitHops += uint64(fh)
	done, _ := m.mcs[mc].Access(ta, m.cfg.LineBytes)
	c.energy.DRAMAccesses++
	tb, fh := m.mesh.Traverse(m.mcTile[mc], home, m.cfg.CtrlPacketBits+8*m.cfg.LineBytes, done)
	c.energy.FlitHops += uint64(fh)
	if v, ok := m.l2[home].Insert(m.l2Index(line), cache.Shared); ok {
		c.dropL2Victim(v, home)
	}
	return tb
}

// dropL2Victim back-invalidates private copies of an inclusively evicted
// L2 line and writes dirty data off chip. Caller holds m.mu.
func (c *ctx) dropL2Victim(v cache.Victim, home int) {
	m := c.m
	line := m.l2Unindex(v.Line, home) // tag arrays store slice-local indices
	cores, broadcast := m.dir.DropLine(line)
	dirty := v.State == cache.Modified
	if broadcast {
		for core := 0; core < m.cfg.Cores; core++ {
			if st := m.l1[core].Invalidate(line); st != cache.Invalid {
				m.disp[core][line] = dispEvicted
				if st == cache.Modified {
					dirty = true
				}
			}
		}
	} else {
		for _, core := range cores {
			if st := m.l1[core].Invalidate(line); st != cache.Invalid {
				m.disp[core][line] = dispEvicted
				if st == cache.Modified {
					dirty = true
				}
			}
		}
	}
	if dirty {
		// Off-critical-path write-back: consumes controller bandwidth
		// and energy but stalls nobody.
		mc := m.controller(line)
		m.mcs[mc].Access(c.now, m.cfg.LineBytes)
		m.extra.DRAMAccesses++
		m.extra.FlitHops += uint64(m.mesh.Hops(home, m.mcTile[mc]) * m.mesh.Flits(m.cfg.CtrlPacketBits+8*m.cfg.LineBytes))
	}
}

// writeBack models an L1 dirty-victim write-back to the home L2 slice:
// bandwidth and energy only, off the critical path. Caller holds m.mu.
func (c *ctx) writeBack(line uint64, from int) {
	m := c.m
	home := m.home(line)
	c.energy.FlitHops += uint64(m.mesh.Hops(from, home) * m.mesh.Flits(m.cfg.CtrlPacketBits+8*m.cfg.LineBytes))
	c.energy.L2Accesses++
	m.l2[home].SetState(m.l2Index(line), cache.Modified) // L2 copy now dirty
}

// applyCoherence performs invalidations/downgrades demanded by act and
// returns the L2Home-Sharers latency: the round trip to the farthest
// involved sharer (invalidations proceed in parallel). Caller holds m.mu.
func (c *ctx) applyCoherence(line uint64, home int, act coherence.Action, write bool) uint64 {
	m := c.m
	var worst uint64
	touch := func(core int) {
		rt := m.mesh.RoundTrip(home, core) + m.cfg.L1LatencyCycles
		if rt > worst {
			worst = rt
		}
		flits := m.mesh.Flits(m.cfg.CtrlPacketBits)
		c.energy.FlitHops += uint64(2 * m.mesh.Hops(home, core) * flits)
	}
	if act.FetchFrom >= 0 && act.FetchFrom != c.core {
		touch(act.FetchFrom)
		if write {
			if st := m.l1[act.FetchFrom].Invalidate(line); st != cache.Invalid {
				m.disp[act.FetchFrom][line] = dispInvalidated
			}
		} else {
			m.l1[act.FetchFrom].SetState(line, cache.Shared)
		}
		if act.Dirty {
			m.l2[home].SetState(m.l2Index(line), cache.Modified)
			c.energy.L2Accesses++
		}
	}
	for _, s := range act.Invalidate {
		if s == c.core {
			continue
		}
		touch(s)
		if st := m.l1[s].Invalidate(line); st != cache.Invalid {
			m.disp[s][line] = dispInvalidated
		}
	}
	if act.Broadcast {
		// Overflowed ACKWise pointers: invalidate every private copy;
		// latency is a round trip across the mesh diameter.
		rt := 2*uint64(m.mesh.Diameter())*m.cfg.HopCycles + m.cfg.L1LatencyCycles
		if rt > worst {
			worst = rt
		}
		flits := uint64(m.mesh.Flits(m.cfg.CtrlPacketBits))
		for core := 0; core < m.cfg.Cores; core++ {
			if core == c.core {
				continue
			}
			if st := m.l1[core].Invalidate(line); st != cache.Invalid {
				m.disp[core][line] = dispInvalidated
				c.energy.FlitHops += uint64(2*m.mesh.Hops(home, core)) * flits
			}
		}
	}
	return worst
}

// prefetchNextLine models a next-line L1 prefetcher: after a demand read
// miss, the following line is brought into the L1 off the critical path
// when it is already on chip and not exclusively owned elsewhere. Energy
// is charged; no time is. Caller holds m.mu.
func (c *ctx) prefetchNextLine(line uint64) {
	m := c.m
	nl := line + 1
	if m.l1[c.core].Peek(nl) != cache.Invalid {
		return
	}
	home := m.home(nl)
	if m.l2[home].Peek(m.l2Index(nl)) == cache.Invalid {
		return // never prefetch off chip
	}
	if m.dir.Owner(nl) >= 0 {
		return // never disturb an exclusive owner
	}
	m.dir.Read(nl, c.core)
	grant := cache.Shared
	if m.dir.Owner(nl) == c.core {
		grant = cache.Exclusive
	}
	if v, ok := m.l1[c.core].Insert(nl, grant); ok {
		m.dir.Evict(v.Line, c.core)
		m.disp[c.core][v.Line] = dispEvicted
		if v.State == cache.Modified {
			c.writeBack(v.Line, c.core)
		}
	}
	m.disp[c.core][nl] = dispPresent
	c.energy.L2Accesses++
	c.energy.DirAccesses++
	c.energy.FlitHops += uint64(m.mesh.Hops(c.core, home) * m.mesh.Flits(m.cfg.CtrlPacketBits+8*m.cfg.LineBytes))
}

// remoteAccess serves a low-locality reference at the home tile without
// allocating it in the private L1 (locality-aware coherence ablation,
// Section VII-A).
func (c *ctx) remoteAccess(line uint64, write bool) {
	m := c.m
	start := c.now
	home := m.home(line)
	t, fh := m.mesh.Traverse(c.core, home, m.cfg.CtrlPacketBits, start)
	c.energy.FlitHops += uint64(fh)
	ls := m.lineStat(line)
	wait := ls.lineWait(t)
	busy := t + wait
	txnStart := busy
	t = busy + m.cfg.L2LatencyCycles
	c.energy.L2Accesses++
	c.energy.DirAccesses++
	c.stats.L2Accesses++
	var offchip uint64
	if m.l2[home].Lookup(m.l2Index(line)) == cache.Invalid {
		c.stats.L2Misses++
		t2 := c.fillFromDRAM(line, home, t)
		offchip = t2 - t
		t = t2
	}
	var act coherence.Action
	if write {
		act = m.dir.RemoteWrite(line)
		m.l2[home].SetState(m.l2Index(line), cache.Modified)
	} else {
		act = m.dir.RemoteRead(line)
	}
	sharers := c.applyCoherence(line, home, act, write)
	t += sharers
	ls.busy += t - txnStart
	ls.count++
	// Word-granularity reply.
	t4, fh := m.mesh.Traverse(home, c.core, m.cfg.CtrlPacketBits+64, t)
	c.energy.FlitHops += uint64(fh)
	reqReply := (t4 - t) + (busy - start - wait) + m.cfg.L2LatencyCycles
	c.brk[exec.CompL1ToL2] += reqReply
	c.brk[exec.CompWaiting] += wait
	c.brk[exec.CompSharers] += sharers
	c.brk[exec.CompOffChip] += offchip
	c.now = start + reqReply + wait + sharers + offchip
}

// mcpTransact models one synchronization operation routed through the
// centralized sync manager on tile 0, as Graphite's MCP does: a request
// message, a serialized service slot, and a reply. The whole trip is
// charged to Synchronization. When aggregate demand exceeds the MCP's
// capacity the backlog term drains at one op per MCPServiceCycles,
// reproducing the paper's synchronization wall for lock-heavy kernels.
func (c *ctx) mcpTransact() {
	m := c.m
	// Not counted as an instruction: the lock's futex-word access is the
	// instruction; this is the system half of the same operation.
	start := c.now

	m.mu.Lock()
	t, fh := m.mesh.Traverse(c.core, 0, m.cfg.CtrlPacketBits, start)
	c.energy.FlitHops += uint64(fh)
	if t > m.mcpHorizon {
		m.mcpHorizon = t
	}
	var wait uint64
	if m.mcpBusy > m.mcpHorizon {
		// Oversubscribed: the backlog must drain serially.
		wait = m.mcpBusy - m.mcpHorizon
	} else {
		wait = noc.QueueDelay(m.mcpBusy, m.mcpHorizon, m.cfg.MCPServiceCycles)
	}
	m.mcpBusy += m.cfg.MCPServiceCycles
	t += wait + m.cfg.MCPServiceCycles
	t2, fh2 := m.mesh.Traverse(0, c.core, m.cfg.CtrlPacketBits, t)
	c.energy.FlitHops += uint64(fh2)
	m.mu.Unlock()

	c.brk[exec.CompSync] += t2 - start
	c.now = t2
}

// Lock implements exec.Ctx: a synchronization trip to the central sync
// manager plus a utilization-based hand-off wait reflecting how busy
// this particular lock is in virtual time.
func (c *ctx) Lock(l exec.Lock) {
	sl, ok := l.(*simLock)
	if !ok {
		panic("sim: foreign lock handle")
	}
	c.throttle()
	c.m.nows[c.tid].Store(blockedClock)
	sl.mu.Lock()
	c.publish()
	c.mcpTransact()
	// Atomic RMW on the futex word: contended locks ping-pong their
	// cache line exactly like the paper's "atomic locks".
	c.access(sl.line<<c.m.lineBits, true)
	if c.now > sl.horizon {
		sl.horizon = c.now
	}
	if sl.count > 0 {
		wait := noc.QueueDelay(sl.busy, sl.horizon, sl.busy/sl.count)
		c.brk[exec.CompSync] += wait
		c.now += wait
	}
	sl.acquiredAt = c.now
}

// Unlock implements exec.Ctx.
func (c *ctx) Unlock(l exec.Lock) {
	sl, ok := l.(*simLock)
	if !ok {
		panic("sim: foreign lock handle")
	}
	c.mcpTransact()
	// Release store on the futex word.
	c.access(sl.line<<c.m.lineBits, true)
	if c.now > sl.acquiredAt {
		sl.busy += c.now - sl.acquiredAt
	}
	sl.count++
	sl.mu.Unlock()
}

// Barrier implements exec.Ctx: all parties reconcile to the maximum
// arrival time plus a mesh-wide release broadcast.
func (c *ctx) Barrier(b exec.Barrier) {
	sb, ok := b.(*simBarrier)
	if !ok {
		panic("sim: foreign barrier handle")
	}
	c.m.nows[c.tid].Store(blockedClock)
	sb.mu.Lock()
	g := sb.gen
	if c.now > g.maxArr {
		g.maxArr = c.now
	}
	g.waiting++
	if g.waiting == sb.parties {
		g.release = g.maxArr + sb.cost
		sb.gen = &barrierGen{ch: make(chan struct{})}
		sb.mu.Unlock()
		close(g.ch)
	} else {
		sb.mu.Unlock()
		select {
		case <-g.ch:
		case <-c.m.run.abort:
			// The run died: withdraw the arrival unless the generation
			// completed anyway (a stale count would let a barrier reused
			// by a later run release early), then resume without
			// virtual-time reconciliation so this thread reaches its
			// next checkpoint and exits.
			sb.mu.Lock()
			if sb.gen == g {
				g.waiting--
			}
			sb.mu.Unlock()
			c.publish()
			return
		}
	}
	if g.release > c.now {
		c.brk[exec.CompSync] += g.release - c.now
		c.now = g.release
	}
	c.publish()
}

// Active implements exec.Ctx telemetry: deltas are recorded against this
// thread's virtual clock and the global active-vertex series is
// reconstructed by prefix sum when the run completes, so the trace is
// independent of how the host scheduler interleaved the goroutines.
func (c *ctx) Active(delta int) {
	if delta == 0 {
		return
	}
	c.samples = append(c.samples, exec.ActiveSample{Time: c.now, Active: int64(delta)})
}

// Run implements exec.Platform. Threads map one-to-one onto cores
// 0..threads-1; thread counts beyond the core count are rejected.
func (m *Machine) Run(threads int, body func(exec.Ctx)) *exec.Report {
	rep, _ := m.RunCtx(context.Background(), threads, body)
	return rep
}

// RunCtx implements exec.Platform. On cancellation the lax-sync barrier
// releases all waiters, window throttling stops sleeping, every thread
// unwinds at its next checkpoint, and the partial timing model state of
// the run is discarded.
func (m *Machine) RunCtx(goCtx context.Context, threads int, body func(exec.Ctx)) (*exec.Report, error) {
	if goCtx == nil {
		goCtx = context.Background()
	}
	if threads < 1 {
		threads = 1
	}
	if threads > m.cfg.Cores {
		panic(fmt.Sprintf("sim: %d threads exceed %d cores", threads, m.cfg.Cores))
	}
	if err := goCtx.Err(); err != nil {
		return nil, err
	}
	m.run = &runControl{cause: goCtx, abort: make(chan struct{})}
	ctxs := make([]*ctx, threads)
	m.nows = make([]atomic.Uint64, threads)
	m.winMin.Store(0)
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		ctxs[t] = &ctx{m: m, tid: t, core: m.placeThread(t, threads), threads: threads}
		go func(c *ctx) {
			defer wg.Done()
			body(c)
			// A finished thread must not hold the window back.
			m.nows[c.tid].Store(blockedClock)
		}(ctxs[t])
	}
	wg.Wait()
	if err := goCtx.Err(); err != nil {
		m.extra = energy.Counter{}
		return nil, err
	}

	rep := &exec.Report{
		Platform:     m.Name(),
		Threads:      threads,
		Instructions: make([]uint64, threads),
		ThreadTime:   make([]uint64, threads),
	}
	var events energy.Counter
	events.Add(m.extra)
	var trace []exec.ActiveSample
	for t, c := range ctxs {
		if c.now > rep.Time {
			rep.Time = c.now
		}
		rep.Breakdown.Add(c.brk)
		rep.Instructions[t] = c.instr
		rep.ThreadTime[t] = c.now
		events.Add(c.energy)
		rep.Cache.L1DAccesses += c.stats.L1DAccesses
		for i := range c.stats.L1DMisses {
			rep.Cache.L1DMisses[i] += c.stats.L1DMisses[i]
		}
		rep.Cache.L2Accesses += c.stats.L2Accesses
		rep.Cache.L2Misses += c.stats.L2Misses
		trace = append(trace, c.samples...)
	}
	rep.ActiveTrace = reconstructTrace(trace, activeTracePoints)
	rep.Energy = m.cfg.Energy.Breakdown(events)
	rep.NetworkFlitHops = events.FlitHops
	m.extra = energy.Counter{}
	return rep, nil
}

// reconstructTrace merges per-thread delta samples by virtual time,
// prefix-sums them into the global active-vertex gauge and downsamples to
// at most maxPoints entries.
func reconstructTrace(deltas []exec.ActiveSample, maxPoints int) []exec.ActiveSample {
	if len(deltas) == 0 {
		return nil
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Time < deltas[j].Time })
	var run int64
	for i := range deltas {
		run += deltas[i].Active
		deltas[i].Active = run
	}
	if len(deltas) <= maxPoints {
		return deltas
	}
	step := (len(deltas) + maxPoints - 1) / maxPoints
	// A fresh slice: writing through deltas[:0] would clobber entries the
	// loop has yet to read once step > 1.
	out := make([]exec.ActiveSample, 0, maxPoints+1)
	for i := 0; i < len(deltas); i += step {
		out = append(out, deltas[i])
	}
	// Always keep the final sample so the trace ends at the true gauge
	// value rather than a stale strided point.
	if (len(deltas)-1)%step != 0 {
		out = append(out, deltas[len(deltas)-1])
	}
	return out
}

// DebugMesh exposes NoC contention counters for diagnostics: total
// queueing delay charged, the busiest link's cumulative flit-cycles, and
// that link's index (tile*4 + direction).
func (m *Machine) DebugMesh() (queuedCycles, busiestBusy uint64, busiestLink int) {
	return m.mesh.DebugStats()
}

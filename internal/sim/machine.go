package sim

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crono/internal/cache"
	"crono/internal/coherence"
	"crono/internal/dram"
	"crono/internal/energy"
	"crono/internal/exec"
	"crono/internal/noc"
)

// activeTracePoints caps the length of the reconstructed active-vertex
// trace returned in reports.
const activeTracePoints = 2048

// Line dispositions for miss classification (Section IV-D).
const (
	dispEvicted     = 1 // previously evicted for room -> capacity miss
	dispInvalidated = 2 // invalidated/downgraded by another core -> sharing miss
	dispPresent     = 3 // currently (or last known) resident
)

// reuseSaturation caps the per-line reuse counters of locality-aware
// mode: the counters are uint8, so an unchecked increment wraps at 255
// and a high threshold would demote a hot line back to remote service
// forever. Config.Validate rejects thresholds past this cap; the clamp
// keeps the counter sane even so.
const reuseSaturation = 255

// Machine is the simulated multicore. Create one per experiment run with
// New; it implements exec.Platform.
//
// # Locking discipline
//
// Shared model state is sharded so concurrently executing simulated
// cores only contend where the modeled hardware would:
//
//   - cores[c] (private L1 tags, miss dispositions, reuse counters) is
//     guarded by that core's lock (cores[c].l1.Mutex). A pure L1 hit
//     takes only this lock — the fast path.
//   - homes[h] (L2 slice tags, directory stripe, per-line occupancy
//     stats) is guarded by that home tile's lock (homes[h].l2.Mutex).
//     Misses to lines homed on different tiles proceed in parallel.
//   - NoC link state, DRAM-controller state and the MCP aggregates are
//     atomics; mesh.Traverse and dram.Access need no lock at all.
//
// Lock order is home stripe -> core, globally: a transaction holding a
// home lock may take core locks one at a time (its own for the L1 fill,
// any sharer's for invalidations), but never a second home lock and
// never two core locks at once, so the hierarchy is deadlock-free. Code
// that holds only its own core lock (the hit fast path) and needs the
// home must release the core lock first and re-verify after reacquiring
// in order (see upgradeExclusive). L1 replacement victims are homed on
// arbitrary tiles, so their directory/write-back cleanup is deferred
// until the filling transaction's home lock is released (dropL1Victim),
// as is the next-line prefetch, whose target is homed on the next tile.
type Machine struct {
	cfg  Config
	mesh *noc.Mesh
	dirs *coherence.Sharded

	cores []coreShard // per-core private state, indexed by core
	homes []homeShard // per-home-tile shared state, indexed by tile

	mcs    []*dram.Controller
	mcTile []int

	// extra accumulates energy events not tied to one thread (L2 victim
	// write-backs). It is the only cross-core aggregate still behind a
	// mutex, and it sits off the hot path.
	extraMu sync.Mutex
	extra   energy.Counter

	// serialMu reinstates the pre-sharding global memory-system lock
	// when cfg.SerialMemory is set: every memory-system transaction
	// serializes behind it and the sharded locks underneath run
	// uncontended. It exists purely as the in-tree baseline for
	// crono-bench's simulator-throughput comparison.
	serialMu sync.Mutex

	allocMu   sync.Mutex
	allocNext exec.Addr

	mcpBusy    atomic.Uint64 // cumulative MCP service demand
	mcpHorizon atomic.Uint64

	// Lax-synchronization window state: published per-thread virtual
	// clocks (blockedClock while waiting on real synchronization) and a
	// cached minimum. See ctx.throttle.
	nows   []atomic.Uint64
	winMin atomic.Uint64

	dbgThrottleSlow  atomic.Uint64
	dbgThrottleSleep atomic.Uint64

	// run is the cancellation state of the in-flight parallel region.
	// A Machine executes one Run at a time (Run resets nows/winMin), so a
	// plain field suffices.
	run *runControl

	lineBits       uint
	barrierArrival uint64 // serialized cost per barrier arrival
	barrierRelease uint64 // barrier release broadcast cost
}

// coreShard is the slice of model state owned by one simulated core. The
// embedded mutex of l1 is the core lock; it guards l1, disp and reuse
// together. Remote transactions (invalidations, L2 back-invalidations)
// take it briefly, always nested inside a home-stripe lock.
type coreShard struct {
	l1    *cache.Locked
	disp  map[uint64]byte  // line dispositions for miss classification
	reuse map[uint64]uint8 // locality-aware touch counters
}

// homeShard is one home tile's slice of shared model state. The embedded
// mutex of l2 is the home-stripe lock; it guards l2, the directory
// stripe and the lineStat map together. Exactly the lines with
// line % Cores == tile are homed here, so one lock covers every
// structure a home-tile transaction touches.
type homeShard struct {
	l2    *cache.Locked
	dir   *coherence.Dir
	lines map[uint64]*lineStat // per-line home-serialization stats
	arena lineStatArena        // slab storage behind the lines map
}

var _ exec.Platform = (*Machine)(nil)

// runControl carries one run's cooperative-cancellation state: the run
// context polled by Checkpoint and an abort channel, closed once, that
// releases barrier waiters and throttle sleepers when the run dies.
type runControl struct {
	cause context.Context
	abort chan struct{}
	once  sync.Once
}

func (rc *runControl) trip() { rc.once.Do(func() { close(rc.abort) }) }

// New builds a machine from cfg (use Default() for Table II).
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mesh, err := noc.New(cfg.Cores, cfg.HopCycles, cfg.FlitBits)
	if err != nil {
		return nil, err
	}
	mesh.SetRouting(cfg.Routing)
	dirs, err := coherence.NewSharded(cfg.DirPointers, cfg.Cores, cfg.Cores)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:      cfg,
		mesh:     mesh,
		dirs:     dirs,
		cores:    make([]coreShard, cfg.Cores),
		homes:    make([]homeShard, cfg.Cores),
		mcs:      make([]*dram.Controller, cfg.MemControllers),
		mcTile:   make([]int, cfg.MemControllers),
		lineBits: 6,
	}
	for c := 0; c < cfg.Cores; c++ {
		cs := &m.cores[c]
		if cs.l1, err = cache.NewLocked(cfg.L1DSizeB, cfg.L1DWays, cfg.LineBytes); err != nil {
			return nil, err
		}
		cs.disp = make(map[uint64]byte)
		if cfg.LocalityAware {
			cs.reuse = make(map[uint64]uint8)
		}
		hs := &m.homes[c]
		if hs.l2, err = cache.NewLocked(cfg.L2SliceSizeB, cfg.L2Ways, cfg.LineBytes); err != nil {
			return nil, err
		}
		hs.dir = dirs.StripeAt(c)
		hs.lines = make(map[uint64]*lineStat)
	}
	for i := 0; i < cfg.MemControllers; i++ {
		if m.mcs[i], err = dram.New(cfg.ClockHz, cfg.DRAMBandwidthBs, cfg.DRAMLatencyNs); err != nil {
			return nil, err
		}
		// Controllers sit at evenly spaced edge tiles.
		m.mcTile[i] = i * cfg.Cores / cfg.MemControllers
	}
	// Per-arrival barrier cost: a centralized shared-memory barrier
	// serializes one atomic RMW on its counter line per arriving thread
	// (a round trip to the line's home plus the L2 access), so barrier
	// latency grows linearly with the party count — a first-order source
	// of the paper's synchronization wall at 256 threads.
	m.barrierArrival = m.avgRoundTrip() + cfg.MCPServiceCycles
	// The release broadcast crosses the mesh once.
	m.barrierRelease = uint64(mesh.Diameter())*cfg.HopCycles + 20
	return m, nil
}

// placeThread spreads t threads evenly over the 2-D mesh: thread tid
// occupies a cell of a tw x th sub-grid scaled onto the full mesh.
// Clustering threads on the first tiles (or striding, which aliases into
// a few mesh columns) funnels their reply traffic through a handful of
// links and saturates them at intermediate thread counts.
func (m *Machine) placeThread(tid, threads int) int {
	w := m.mesh.Width
	if threads >= m.cfg.Cores {
		return tid
	}
	tw := 1
	for tw*tw < threads {
		tw++
	}
	th := (threads + tw - 1) / tw
	gx, gy := tid%tw, tid/tw
	x := gx * w / tw
	y := gy * m.mesh.Height / th
	return y*w + x
}

// avgRoundTrip is the mean uncontended round-trip latency between two
// uniformly random tiles: the mean Manhattan distance on a WxW mesh is
// 2(W^2-1)/(3W).
func (m *Machine) avgRoundTrip() uint64 {
	w := float64(m.mesh.Width)
	meanHops := 2 * (w*w - 1) / (3 * w)
	return uint64(2*meanHops*float64(m.cfg.HopCycles) + 0.5)
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Name implements exec.Platform.
func (m *Machine) Name() string { return "sim" }

// Alloc implements exec.Platform with a line-aligned bump allocator;
// lines interleave across L2 home slices (NUCA).
func (m *Machine) Alloc(name string, elems, elemSize int) exec.Region {
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	if m.allocNext == 0 {
		m.allocNext = uint64(m.cfg.LineBytes)
	}
	base := m.allocNext
	bytes := uint64(elems) * uint64(elemSize)
	lb := uint64(m.cfg.LineBytes)
	bytes = (bytes + lb - 1) &^ (lb - 1)
	m.allocNext += bytes
	return exec.Region{Name: name, Base: base, ElemSize: uint64(elemSize), Elems: uint64(elems)}
}

func (m *Machine) home(line uint64) int { return int(line % uint64(m.cfg.Cores)) }

// homeShardOf returns the home-tile shard owning line.
func (m *Machine) homeShardOf(line uint64) *homeShard { return &m.homes[m.home(line)] }

// l2Index maps a global line address to its slot within the home slice's
// tag array. Lines reaching a slice all share the same residue modulo the
// core count, so dividing by it removes the aliasing that would otherwise
// fold every line into the same few sets.
func (m *Machine) l2Index(line uint64) uint64 { return line / uint64(m.cfg.Cores) }

// l2Unindex reverses l2Index for a known home slice.
func (m *Machine) l2Unindex(idx uint64, home int) uint64 {
	return idx*uint64(m.cfg.Cores) + uint64(home)
}

func (m *Machine) controller(line uint64) int { return int(line % uint64(m.cfg.MemControllers)) }

// coreIsOOO reports whether the given core has the out-of-order pipeline:
// either the whole machine is OOO, or the heterogeneous design point puts
// one OOO core at tile 0 for the master thread (Section VII-B).
func (m *Machine) coreIsOOO(core int) bool {
	return m.cfg.CoreType == OutOfOrder || (m.cfg.HeteroMasterOOO && core == 0)
}

// lineStat tracks the cumulative home-tile occupancy of one cache line
// for the utilization-based L2Home-Waiting model: requests to the same
// line must serialize at the home to keep memory consistent, so a hot
// line charges a queueing delay proportional to its utilization.
type lineStat struct {
	busy    uint64 // cumulative transaction occupancy at the home
	horizon uint64 // latest virtual time observed
	count   uint64 // transactions served
}

// lineStatBlock is the lineStatArena slab size: large enough to
// amortize slab allocation over a graph-sized working set, small enough
// not to waste memory on tiny runs.
const lineStatBlock = 512

// lineStatArena is a slab allocator for lineStat entries. The miss path
// creates one entry per distinct line homed on the tile — for graph
// kernels that is millions of map inserts each formerly paired with its
// own tiny heap allocation. Slabs cut that to one allocation per
// lineStatBlock entries. Handed-out pointers stay valid forever: slabs
// are append-only and never moved or shrunk. Caller holds the
// home-stripe lock; entries are zero-valued exactly like &lineStat{}.
type lineStatArena struct {
	slabs [][]lineStat
	used  int // entries used in the newest slab
}

func (a *lineStatArena) get() *lineStat {
	if len(a.slabs) == 0 || a.used == lineStatBlock {
		a.slabs = append(a.slabs, make([]lineStat, lineStatBlock))
		a.used = 0
	}
	ls := &a.slabs[len(a.slabs)-1][a.used]
	a.used++
	return ls
}

// lineStat returns (allocating from the tile's arena if needed) the
// stats of a line homed on this shard. Caller holds the home-stripe
// lock.
func (hs *homeShard) lineStat(line uint64) *lineStat {
	ls := hs.lines[line]
	if ls == nil {
		ls = hs.arena.get()
		hs.lines[line] = ls
	}
	return ls
}

// lineWait returns the L2Home-Waiting estimate for a request to line
// arriving at time t and updates the horizon.
func (ls *lineStat) lineWait(t uint64) uint64 {
	if t > ls.horizon {
		ls.horizon = t
	}
	if ls.count == 0 {
		return 0
	}
	return noc.QueueDelay(ls.busy, ls.horizon, ls.busy/ls.count)
}

type simLock struct {
	mu   sync.Mutex
	line uint64 // futex word; retained for the locality ablation
	// Utilization stats for the lax-safe hand-off wait model: a strict
	// "wait until the previous holder's release time" rule would let a
	// virtual-time front-runner drag every later acquirer up to its
	// clock even when they contend only in real time, not virtual time.
	busy       uint64 // cumulative held cycles
	horizon    uint64 // latest virtual time observed
	count      uint64 // completed critical sections
	acquiredAt uint64
}

// NewLock implements exec.Platform: each lock occupies its own cache
// line, so lock transfers generate the coherence ping-pong the paper
// attributes synchronization traffic to.
func (m *Machine) NewLock() exec.Lock {
	r := m.Alloc("lock", 1, m.cfg.LineBytes)
	return &simLock{line: r.Base >> m.lineBits}
}

type simBarrier struct {
	mu      sync.Mutex
	parties int
	cost    uint64
	gen     *barrierGen
}

// barrierGen is one barrier generation. The last arriver stamps release
// (the reconciled virtual time all parties resume at) and closes ch;
// waiters select on ch and on the run's abort channel, so a canceled run
// releases every waiter even when some parties already exited at a
// checkpoint and will never arrive.
type barrierGen struct {
	waiting int
	maxArr  uint64
	release uint64
	ch      chan struct{}
}

// NewBarrier implements exec.Platform.
func (m *Machine) NewBarrier(parties int) exec.Barrier {
	return &simBarrier{
		parties: parties,
		cost:    uint64(parties)*m.barrierArrival + m.barrierRelease,
		gen:     &barrierGen{ch: make(chan struct{})},
	}
}

// ctx is the per-thread simulation context. Its virtual clock (now)
// advances through the timing model; clocks reconcile at locks and
// barriers (lax synchronization).
type ctx struct {
	m       *Machine
	tid     int
	core    int
	threads int
	ops     uint32 // accesses since the last window check
	now     uint64
	brk     exec.Breakdown
	instr   uint64
	energy  energy.Counter
	stats   exec.CacheStats
	samples []exec.ActiveSample
}

var _ exec.Ctx = (*ctx)(nil)

// blockedClock marks a thread that is waiting on real synchronization (a
// barrier or a contended lock) or has finished; such threads are excluded
// from the window minimum, since they are waiting for the runnable ones.
const blockedClock = ^uint64(0)

// publish makes this thread's virtual clock visible to the window.
func (c *ctx) publish() { c.m.nows[c.tid].Store(c.now) }

// throttle bounds lax-synchronization clock skew: if this thread's
// virtual clock is more than WindowCycles ahead of the slowest runnable
// thread, it waits (in real time) for the laggards. Without this, the
// real Go scheduler decides who wins races for dynamically distributed
// work, letting one simulated thread complete vertex captures that its
// virtually-concurrent peers should have shared.
func (c *ctx) throttle() {
	m := c.m
	w := m.cfg.WindowCycles
	if w == 0 || c.threads == 1 {
		return
	}
	c.publish()
	if c.now <= m.winMin.Load()+w {
		return
	}
	m.dbgThrottleSlow.Add(1)
	// Exponential backoff: with hundreds of simulated threads on few
	// host CPUs, hundreds of waiters polling at a fixed fine interval
	// would starve the very laggard they are waiting for.
	backoff := 20 * time.Microsecond
	const maxBackoff = 5 * time.Millisecond
	for {
		select {
		case <-m.run.abort:
			// A dying run will never advance the laggards' clocks.
			return
		default:
		}
		min := blockedClock
		for t := range m.nows {
			if v := m.nows[t].Load(); v < min {
				min = v
			}
		}
		if min == blockedClock {
			return // everyone else is blocked or done
		}
		m.winMin.Store(min)
		if c.now <= min+w {
			return
		}
		m.dbgThrottleSleep.Add(1)
		time.Sleep(backoff)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// DebugThrottle reports window-throttle engagement counters.
func (m *Machine) DebugThrottle() (slowChecks, sleeps uint64) {
	return m.dbgThrottleSlow.Load(), m.dbgThrottleSleep.Load()
}

func (c *ctx) TID() int     { return c.tid }
func (c *ctx) Threads() int { return c.threads }

// Checkpoint implements exec.Ctx: a non-blocking poll of the run context.
// Simulated time is not charged; cancellation is a harness-control event,
// not part of the modeled kernel.
func (c *ctx) Checkpoint() error {
	rc := c.m.run
	if err := rc.cause.Err(); err != nil {
		rc.trip()
		return err
	}
	return nil
}

// Compute models n single-cycle pipeline instructions.
func (c *ctx) Compute(n int) {
	if n <= 0 {
		return
	}
	c.instr += uint64(n)
	c.energy.Instructions += uint64(n)
	c.now += uint64(n)
	c.brk[exec.CompCompute] += uint64(n)
}

func (c *ctx) Load(a exec.Addr)  { c.access(a, false) }
func (c *ctx) Store(a exec.Addr) { c.access(a, true) }

// Atomic annotations run the same timing model as their plain
// counterparts: the paper's machine serializes atomics at the L2 home
// tile exactly like ordinary coherence transactions, so an atomic load
// costs a load and an atomic store or RMW costs a store. The
// distinction feeds synchronization-aware tooling only.
func (c *ctx) AtomicLoad(a exec.Addr)  { c.access(a, false) }
func (c *ctx) AtomicStore(a exec.Addr) { c.access(a, true) }
func (c *ctx) AtomicRMW(a exec.Addr)   { c.access(a, true) }

// LoadSpan implements exec.Ctx: one full cache transaction per touched
// line, plus single-cycle L1 hits for the remaining elements — exactly
// what per-element Load calls produce for a sequential scan, but without
// running the full model per element.
func (c *ctx) LoadSpan(a exec.Addr, elems, elemSize int) { c.span(a, elems, elemSize, false) }

// StoreSpan implements exec.Ctx, as LoadSpan for writes.
func (c *ctx) StoreSpan(a exec.Addr, elems, elemSize int) { c.span(a, elems, elemSize, true) }

func (c *ctx) span(a exec.Addr, elems, elemSize int, write bool) {
	if elems <= 0 || elemSize <= 0 {
		return
	}
	m := c.m
	lineBytes := uint64(m.cfg.LineBytes)
	end := a + uint64(elems)*uint64(elemSize)
	for cur := a; cur < end; {
		// Elements whose first byte falls in cur's line.
		lineEnd := (cur>>m.lineBits + 1) * lineBytes
		n := int((lineEnd - cur + uint64(elemSize) - 1) / uint64(elemSize))
		if rem := int((end - cur + uint64(elemSize) - 1) / uint64(elemSize)); n > rem {
			n = rem
		}
		c.access(cur, write) // full model once per line
		if n > 1 {
			extra := uint64(n - 1)
			c.instr += extra
			c.energy.Instructions += extra
			c.energy.L1DAccesses += extra
			c.stats.L1DAccesses += extra
			c.now += extra * m.cfg.L1LatencyCycles
			c.brk[exec.CompCompute] += extra * m.cfg.L1LatencyCycles
		}
		cur += uint64(n) * uint64(elemSize)
	}
}

// access runs one data reference through the full memory-system model.
func (c *ctx) access(addr exec.Addr, write bool) {
	m := c.m
	c.ops++
	if c.ops >= 256 {
		c.ops = 0
		c.throttle()
	}
	// Base pipeline cycle (includes the 1-cycle L1 hit, Table II).
	c.instr++
	c.energy.Instructions++
	c.now += m.cfg.L1LatencyCycles
	c.brk[exec.CompCompute] += m.cfg.L1LatencyCycles
	c.energy.L1DAccesses++
	c.stats.L1DAccesses++

	if m.cfg.SerialMemory {
		m.serialMu.Lock()
		defer m.serialMu.Unlock()
	}

	line := addr >> m.lineBits
	cs := &m.cores[c.core]
	hs := m.homeShardOf(line)

	for {
		cs.l1.Lock()
		st := cs.l1.Lookup(line)
		if st != cache.Invalid && (!write || st == cache.Modified) {
			// Pure L1 hit: the core lock is the only lock taken.
			cs.l1.Unlock()
			return
		}
		if write && st == cache.Exclusive {
			// Silent E->M upgrade: the directory dirty bit lives under
			// the home-stripe lock, and home locks order before core
			// locks, so drop the core lock and redo the pair in order.
			cs.l1.Unlock()
			if c.upgradeExclusive(cs, hs, line) {
				return
			}
			// A concurrent transaction stole the line between the two
			// lock scopes; retry the whole reference.
			continue
		}

		if m.cfg.LocalityAware && st == cache.Invalid {
			if int(cs.reuse[line]) < m.cfg.LocalityThreshold {
				if v := cs.reuse[line]; v < reuseSaturation {
					cs.reuse[line] = v + 1
				}
				cs.l1.Unlock()
				c.remoteAccess(line, write)
				return
			}
		}

		if st == cache.Invalid {
			// True L1 miss: classify per Section IV-D.
			cl := exec.MissCold
			switch cs.disp[line] {
			case dispEvicted:
				cl = exec.MissCapacity
			case dispInvalidated:
				cl = exec.MissSharing
			}
			c.stats.L1DMisses[cl]++
		}
		// st == Shared && write is an upgrade: not a miss, but it travels
		// to the home tile for invalidations like one.
		cs.l1.Unlock()
		break
	}

	start := c.now
	home := m.home(line)

	// Request to the home tile (link state is atomic: no lock).
	t, fh := m.mesh.Traverse(c.core, home, m.cfg.CtrlPacketBits, start)
	c.energy.FlitHops += uint64(fh)

	hs.l2.Lock()

	// Home serialization: requests to the same line queue up
	// (L2Home-Waiting).
	ls := hs.lineStat(line)
	wait := ls.lineWait(t)
	busy := t + wait
	txnStart := busy

	// First L2 access + directory lookup.
	t = busy + m.cfg.L2LatencyCycles
	c.energy.L2Accesses++
	c.energy.DirAccesses++
	c.stats.L2Accesses++

	// Off-chip fill on L2 miss.
	var offchip uint64
	if hs.l2.Lookup(m.l2Index(line)) == cache.Invalid {
		c.stats.L2Misses++
		t2 := c.fillFromDRAM(hs, line, home, t)
		offchip = t2 - t
		t = t2
	}

	// Coherence actions (L2Home-Sharers).
	var act coherence.Action
	if write {
		act = hs.dir.Write(line, c.core)
	} else {
		act = hs.dir.Read(line, c.core)
	}
	sharers := c.applyCoherence(hs, line, home, act, write)
	t += sharers

	// The home transaction completes; record its occupancy for later
	// requests to the same line.
	ls.busy += t - txnStart
	ls.count++

	// Data reply to the requester.
	dataBits := m.cfg.CtrlPacketBits + 8*m.cfg.LineBytes
	t4, fh := m.mesh.Traverse(home, c.core, dataBits, t)
	c.energy.FlitHops += uint64(fh)

	// Fill the private L1 while still holding the home stripe: releasing
	// first would let another core's write invalidate a copy that is not
	// inserted yet, losing the invalidation. Home -> core nesting is the
	// global lock order.
	grant := cache.Shared
	if write {
		grant = cache.Modified
	} else if hs.dir.Owner(line) == c.core {
		grant = cache.Exclusive
	}
	cs.l1.Lock()
	v, evicted := cs.l1.Insert(line, grant)
	cs.disp[line] = dispPresent
	cs.l1.Unlock()
	hs.l2.Unlock()

	// The victim is homed on an arbitrary tile and two home stripes
	// never nest, so its cleanup runs after this transaction's home lock
	// is released. Likewise the prefetch: line+1 is homed on a different
	// tile.
	if evicted {
		c.dropL1Victim(cs, v)
	}
	if m.cfg.NextLinePrefetch && !write {
		c.prefetchNextLine(cs, line)
	}

	// Attribute the stall (lax virtual time).
	reqReply := (t4 - t) + (busy - start - wait) + m.cfg.L2LatencyCycles
	l1l2 := reqReply
	if m.coreIsOOO(c.core) {
		hideL := uint64(float64(l1l2) * m.cfg.OOOHideFraction)
		hideO := uint64(float64(offchip) * m.cfg.OOOHideFraction)
		l1l2 -= hideL
		offchip -= hideO
	}
	c.brk[exec.CompL1ToL2] += l1l2
	c.brk[exec.CompWaiting] += wait
	c.brk[exec.CompSharers] += sharers
	c.brk[exec.CompOffChip] += offchip
	c.now = start + l1l2 + wait + sharers + offchip
}

// upgradeExclusive performs the silent E->M upgrade under the proper
// home -> core lock order, re-verifying the state observed by the
// lock-free fast path. It reports whether the upgrade completed; false
// means a concurrent transaction took the line between the fast path's
// core-lock scope and this one, and the caller must retry the reference.
// Single-threaded the verification never fails (an Exclusive L1 line
// implies directory ownership), so the operation sequence is exactly the
// pre-sharding SetState + Write.
func (c *ctx) upgradeExclusive(cs *coreShard, hs *homeShard, line uint64) bool {
	hs.l2.Lock()
	if hs.dir.Owner(line) != c.core {
		hs.l2.Unlock()
		return false
	}
	cs.l1.Lock()
	ok := cs.l1.Peek(line) == cache.Exclusive
	if ok {
		cs.l1.SetState(line, cache.Modified)
		hs.dir.Write(line, c.core) // owner write: sets the dirty bit only
	}
	cs.l1.Unlock()
	hs.l2.Unlock()
	return ok
}

// fillFromDRAM fetches line into home's L2 slice starting at cycle t and
// returns the completion cycle. Caller holds hs's home-stripe lock.
func (c *ctx) fillFromDRAM(hs *homeShard, line uint64, home int, t uint64) uint64 {
	m := c.m
	mc := m.controller(line)
	ta, fh := m.mesh.Traverse(home, m.mcTile[mc], m.cfg.CtrlPacketBits, t)
	c.energy.FlitHops += uint64(fh)
	done, _ := m.mcs[mc].Access(ta, m.cfg.LineBytes)
	c.energy.DRAMAccesses++
	tb, fh := m.mesh.Traverse(m.mcTile[mc], home, m.cfg.CtrlPacketBits+8*m.cfg.LineBytes, done)
	c.energy.FlitHops += uint64(fh)
	if v, ok := hs.l2.Insert(m.l2Index(line), cache.Shared); ok {
		c.dropL2Victim(hs, v, home)
	}
	return tb
}

// dropL2Victim back-invalidates private copies of an inclusively evicted
// L2 line and writes dirty data off chip. Caller holds hs's home-stripe
// lock; sharer core locks are taken one at a time underneath it. The
// victim is homed on this same tile (every line in a slice is), so its
// directory entry lives in hs.dir.
func (c *ctx) dropL2Victim(hs *homeShard, v cache.Victim, home int) {
	m := c.m
	line := m.l2Unindex(v.Line, home) // tag arrays store slice-local indices
	cores, broadcast := hs.dir.DropLine(line)
	dirty := v.State == cache.Modified
	inval := func(core int) {
		cs := &m.cores[core]
		cs.l1.Lock()
		if st := cs.l1.Invalidate(line); st != cache.Invalid {
			cs.disp[line] = dispEvicted
			if st == cache.Modified {
				dirty = true
			}
		}
		cs.l1.Unlock()
	}
	if broadcast {
		for core := 0; core < m.cfg.Cores; core++ {
			inval(core)
		}
	} else {
		for _, core := range cores {
			inval(core)
		}
	}
	if dirty {
		// Off-critical-path write-back: consumes controller bandwidth
		// and energy but stalls nobody.
		mc := m.controller(line)
		m.mcs[mc].Access(c.now, m.cfg.LineBytes)
		m.extraMu.Lock()
		m.extra.DRAMAccesses++
		m.extra.FlitHops += uint64(m.mesh.Hops(home, m.mcTile[mc]) * m.mesh.Flits(m.cfg.CtrlPacketBits+8*m.cfg.LineBytes))
		m.extraMu.Unlock()
	}
}

// dropL1Victim retires an L1 replacement victim at its own home tile:
// the directory drops this core's pointer and a Modified victim models a
// write-back into the home L2 slice (bandwidth and energy only, off the
// critical path). Caller holds no locks; the victim's home stripe and
// this core's lock are taken in order.
func (c *ctx) dropL1Victim(cs *coreShard, v cache.Victim) {
	m := c.m
	line := v.Line
	home := m.home(line)
	hs := &m.homes[home]
	hs.l2.Lock()
	hs.dir.Evict(line, c.core)
	cs.l1.Lock()
	cs.disp[line] = dispEvicted
	cs.l1.Unlock()
	if v.State == cache.Modified {
		c.energy.FlitHops += uint64(m.mesh.Hops(c.core, home) * m.mesh.Flits(m.cfg.CtrlPacketBits+8*m.cfg.LineBytes))
		c.energy.L2Accesses++
		hs.l2.SetState(m.l2Index(line), cache.Modified) // L2 copy now dirty
	}
	hs.l2.Unlock()
}

// applyCoherence performs invalidations/downgrades demanded by act and
// returns the L2Home-Sharers latency: the round trip to the farthest
// involved sharer (invalidations proceed in parallel). Caller holds hs's
// home-stripe lock and no core lock; sharer core locks are taken one at
// a time underneath it.
func (c *ctx) applyCoherence(hs *homeShard, line uint64, home int, act coherence.Action, write bool) uint64 {
	m := c.m
	var worst uint64
	touch := func(core int) {
		rt := m.mesh.RoundTrip(home, core) + m.cfg.L1LatencyCycles
		if rt > worst {
			worst = rt
		}
		flits := m.mesh.Flits(m.cfg.CtrlPacketBits)
		c.energy.FlitHops += uint64(2 * m.mesh.Hops(home, core) * flits)
	}
	if act.FetchFrom >= 0 && act.FetchFrom != c.core {
		touch(act.FetchFrom)
		fs := &m.cores[act.FetchFrom]
		fs.l1.Lock()
		if write {
			if st := fs.l1.Invalidate(line); st != cache.Invalid {
				fs.disp[line] = dispInvalidated
			}
		} else {
			fs.l1.SetState(line, cache.Shared)
		}
		fs.l1.Unlock()
		if act.Dirty {
			hs.l2.SetState(m.l2Index(line), cache.Modified)
			c.energy.L2Accesses++
		}
	}
	for _, s := range act.Invalidate {
		if s == c.core {
			continue
		}
		touch(s)
		ss := &m.cores[s]
		ss.l1.Lock()
		if st := ss.l1.Invalidate(line); st != cache.Invalid {
			ss.disp[line] = dispInvalidated
		}
		ss.l1.Unlock()
	}
	if act.Broadcast {
		// Overflowed ACKWise pointers: invalidate every private copy;
		// latency is a round trip across the mesh diameter.
		rt := 2*uint64(m.mesh.Diameter())*m.cfg.HopCycles + m.cfg.L1LatencyCycles
		if rt > worst {
			worst = rt
		}
		flits := uint64(m.mesh.Flits(m.cfg.CtrlPacketBits))
		for core := 0; core < m.cfg.Cores; core++ {
			if core == c.core {
				continue
			}
			bs := &m.cores[core]
			bs.l1.Lock()
			if st := bs.l1.Invalidate(line); st != cache.Invalid {
				bs.disp[line] = dispInvalidated
				c.energy.FlitHops += uint64(2*m.mesh.Hops(home, core)) * flits
			}
			bs.l1.Unlock()
		}
	}
	return worst
}

// prefetchNextLine models a next-line L1 prefetcher: after a demand read
// miss, the following line is brought into the L1 off the critical path
// when it is already on chip and not exclusively owned elsewhere. Energy
// is charged; no time is. Caller holds no locks — line+1 is homed on a
// different tile than line, so the prefetch runs as its own home-stripe
// transaction.
func (c *ctx) prefetchNextLine(cs *coreShard, line uint64) {
	m := c.m
	nl := line + 1
	cs.l1.Lock()
	present := cs.l1.Peek(nl) != cache.Invalid
	cs.l1.Unlock()
	if present {
		return
	}
	home := m.home(nl)
	hs := &m.homes[home]
	hs.l2.Lock()
	if hs.l2.Peek(m.l2Index(nl)) == cache.Invalid {
		hs.l2.Unlock()
		return // never prefetch off chip
	}
	if hs.dir.Owner(nl) >= 0 {
		hs.l2.Unlock()
		return // never disturb an exclusive owner
	}
	hs.dir.Read(nl, c.core)
	grant := cache.Shared
	if hs.dir.Owner(nl) == c.core {
		grant = cache.Exclusive
	}
	cs.l1.Lock()
	v, evicted := cs.l1.Insert(nl, grant)
	cs.disp[nl] = dispPresent
	cs.l1.Unlock()
	hs.l2.Unlock()
	c.energy.L2Accesses++
	c.energy.DirAccesses++
	c.energy.FlitHops += uint64(m.mesh.Hops(c.core, home) * m.mesh.Flits(m.cfg.CtrlPacketBits+8*m.cfg.LineBytes))
	if evicted {
		c.dropL1Victim(cs, v)
	}
}

// remoteAccess serves a low-locality reference at the home tile without
// allocating it in the private L1 (locality-aware coherence ablation,
// Section VII-A). Caller holds no locks.
func (c *ctx) remoteAccess(line uint64, write bool) {
	m := c.m
	start := c.now
	home := m.home(line)
	hs := &m.homes[home]
	t, fh := m.mesh.Traverse(c.core, home, m.cfg.CtrlPacketBits, start)
	c.energy.FlitHops += uint64(fh)
	hs.l2.Lock()
	ls := hs.lineStat(line)
	wait := ls.lineWait(t)
	busy := t + wait
	txnStart := busy
	t = busy + m.cfg.L2LatencyCycles
	c.energy.L2Accesses++
	c.energy.DirAccesses++
	c.stats.L2Accesses++
	var offchip uint64
	if hs.l2.Lookup(m.l2Index(line)) == cache.Invalid {
		c.stats.L2Misses++
		t2 := c.fillFromDRAM(hs, line, home, t)
		offchip = t2 - t
		t = t2
	}
	var act coherence.Action
	if write {
		act = hs.dir.RemoteWrite(line)
		hs.l2.SetState(m.l2Index(line), cache.Modified)
	} else {
		act = hs.dir.RemoteRead(line)
	}
	sharers := c.applyCoherence(hs, line, home, act, write)
	t += sharers
	ls.busy += t - txnStart
	ls.count++
	hs.l2.Unlock()
	// Word-granularity reply.
	t4, fh := m.mesh.Traverse(home, c.core, m.cfg.CtrlPacketBits+64, t)
	c.energy.FlitHops += uint64(fh)
	reqReply := (t4 - t) + (busy - start - wait) + m.cfg.L2LatencyCycles
	c.brk[exec.CompL1ToL2] += reqReply
	c.brk[exec.CompWaiting] += wait
	c.brk[exec.CompSharers] += sharers
	c.brk[exec.CompOffChip] += offchip
	c.now = start + reqReply + wait + sharers + offchip
}

// mcpTransact models one synchronization operation routed through the
// centralized sync manager on tile 0, as Graphite's MCP does: a request
// message, a serialized service slot, and a reply. The whole trip is
// charged to Synchronization. When aggregate demand exceeds the MCP's
// capacity the backlog term drains at one op per MCPServiceCycles,
// reproducing the paper's synchronization wall for lock-heavy kernels.
// The MCP aggregates are atomics, so no lock is taken: the horizon is
// raised first, then the service demand is reserved, and the backlog is
// priced against the pre-reservation demand — the same arithmetic the
// serialized model performed.
func (c *ctx) mcpTransact() {
	m := c.m
	// Not counted as an instruction: the lock's futex-word access is the
	// instruction; this is the system half of the same operation.
	start := c.now

	if m.cfg.SerialMemory {
		m.serialMu.Lock()
		defer m.serialMu.Unlock()
	}
	t, fh := m.mesh.Traverse(c.core, 0, m.cfg.CtrlPacketBits, start)
	c.energy.FlitHops += uint64(fh)
	horizon := noc.MaxTo(&m.mcpHorizon, t)
	demand := m.mcpBusy.Add(m.cfg.MCPServiceCycles) - m.cfg.MCPServiceCycles
	var wait uint64
	if demand > horizon {
		// Oversubscribed: the backlog must drain serially.
		wait = demand - horizon
	} else {
		wait = noc.QueueDelay(demand, horizon, m.cfg.MCPServiceCycles)
	}
	t += wait + m.cfg.MCPServiceCycles
	t2, fh2 := m.mesh.Traverse(0, c.core, m.cfg.CtrlPacketBits, t)
	c.energy.FlitHops += uint64(fh2)

	c.brk[exec.CompSync] += t2 - start
	c.now = t2
}

// Lock implements exec.Ctx: a synchronization trip to the central sync
// manager plus a utilization-based hand-off wait reflecting how busy
// this particular lock is in virtual time.
func (c *ctx) Lock(l exec.Lock) {
	sl, ok := l.(*simLock)
	if !ok {
		panic("sim: foreign lock handle")
	}
	c.throttle()
	c.m.nows[c.tid].Store(blockedClock)
	sl.mu.Lock()
	c.publish()
	c.mcpTransact()
	// Atomic RMW on the futex word: contended locks ping-pong their
	// cache line exactly like the paper's "atomic locks".
	c.access(sl.line<<c.m.lineBits, true)
	if c.now > sl.horizon {
		sl.horizon = c.now
	}
	if sl.count > 0 {
		wait := noc.QueueDelay(sl.busy, sl.horizon, sl.busy/sl.count)
		c.brk[exec.CompSync] += wait
		c.now += wait
	}
	sl.acquiredAt = c.now
}

// Unlock implements exec.Ctx.
func (c *ctx) Unlock(l exec.Lock) {
	sl, ok := l.(*simLock)
	if !ok {
		panic("sim: foreign lock handle")
	}
	c.mcpTransact()
	// Release store on the futex word.
	c.access(sl.line<<c.m.lineBits, true)
	if c.now > sl.acquiredAt {
		sl.busy += c.now - sl.acquiredAt
	}
	sl.count++
	sl.mu.Unlock()
}

// Barrier implements exec.Ctx: all parties reconcile to the maximum
// arrival time plus a mesh-wide release broadcast.
func (c *ctx) Barrier(b exec.Barrier) {
	sb, ok := b.(*simBarrier)
	if !ok {
		panic("sim: foreign barrier handle")
	}
	c.m.nows[c.tid].Store(blockedClock)
	sb.mu.Lock()
	g := sb.gen
	if c.now > g.maxArr {
		g.maxArr = c.now
	}
	g.waiting++
	if g.waiting == sb.parties {
		g.release = g.maxArr + sb.cost
		sb.gen = &barrierGen{ch: make(chan struct{})}
		sb.mu.Unlock()
		close(g.ch)
	} else {
		sb.mu.Unlock()
		select {
		case <-g.ch:
		case <-c.m.run.abort:
			// The run died: withdraw the arrival unless the generation
			// completed anyway (a stale count would let a barrier reused
			// by a later run release early), then resume without
			// virtual-time reconciliation so this thread reaches its
			// next checkpoint and exits.
			sb.mu.Lock()
			if sb.gen == g {
				g.waiting--
			}
			sb.mu.Unlock()
			c.publish()
			return
		}
	}
	if g.release > c.now {
		c.brk[exec.CompSync] += g.release - c.now
		c.now = g.release
	}
	c.publish()
}

// Active implements exec.Ctx telemetry: deltas are recorded against this
// thread's virtual clock and the global active-vertex series is
// reconstructed by prefix sum when the run completes, so the trace is
// independent of how the host scheduler interleaved the goroutines.
func (c *ctx) Active(delta int) {
	if delta == 0 {
		return
	}
	c.samples = append(c.samples, exec.ActiveSample{Time: c.now, Active: int64(delta)})
}

// Run implements exec.Platform. Threads map one-to-one onto cores
// 0..threads-1; thread counts beyond the core count are rejected.
func (m *Machine) Run(threads int, body func(exec.Ctx)) *exec.Report {
	rep, _ := m.RunCtx(context.Background(), threads, body)
	return rep
}

// RunCtx implements exec.Platform. On cancellation the lax-sync barrier
// releases all waiters, window throttling stops sleeping, every thread
// unwinds at its next checkpoint, and the partial timing model state of
// the run is discarded.
func (m *Machine) RunCtx(goCtx context.Context, threads int, body func(exec.Ctx)) (*exec.Report, error) {
	if goCtx == nil {
		goCtx = context.Background()
	}
	if threads < 1 {
		threads = 1
	}
	if threads > m.cfg.Cores {
		panic(fmt.Sprintf("sim: %d threads exceed %d cores", threads, m.cfg.Cores))
	}
	if err := goCtx.Err(); err != nil {
		return nil, err
	}
	m.run = &runControl{cause: goCtx, abort: make(chan struct{})}
	ctxs := make([]*ctx, threads)
	m.nows = make([]atomic.Uint64, threads)
	m.winMin.Store(0)
	var wg sync.WaitGroup
	wg.Add(threads)
	// Host wall-clock of the parallel region, reported out of band for
	// simulator-throughput measurements; it never feeds the model.
	hostStart := time.Now() //crono:vet-ignore simdeterminism
	for t := 0; t < threads; t++ {
		ctxs[t] = &ctx{m: m, tid: t, core: m.placeThread(t, threads), threads: threads}
		go func(c *ctx) {
			defer wg.Done()
			body(c)
			// A finished thread must not hold the window back.
			m.nows[c.tid].Store(blockedClock)
		}(ctxs[t])
	}
	wg.Wait()
	hostNs := uint64(time.Since(hostStart)) //crono:vet-ignore simdeterminism
	if err := goCtx.Err(); err != nil {
		m.extraMu.Lock()
		m.extra = energy.Counter{}
		m.extraMu.Unlock()
		return nil, err
	}

	rep := &exec.Report{
		Platform:     m.Name(),
		Threads:      threads,
		HostNs:       hostNs,
		Instructions: make([]uint64, threads),
		ThreadTime:   make([]uint64, threads),
	}
	var events energy.Counter
	m.extraMu.Lock()
	events.Add(m.extra)
	m.extra = energy.Counter{}
	m.extraMu.Unlock()
	var trace []exec.ActiveSample
	for t, c := range ctxs {
		if c.now > rep.Time {
			rep.Time = c.now
		}
		rep.Breakdown.Add(c.brk)
		rep.Instructions[t] = c.instr
		rep.ThreadTime[t] = c.now
		events.Add(c.energy)
		rep.Cache.L1DAccesses += c.stats.L1DAccesses
		for i := range c.stats.L1DMisses {
			rep.Cache.L1DMisses[i] += c.stats.L1DMisses[i]
		}
		rep.Cache.L2Accesses += c.stats.L2Accesses
		rep.Cache.L2Misses += c.stats.L2Misses
		trace = append(trace, c.samples...)
	}
	rep.ActiveTrace = reconstructTrace(trace, activeTracePoints)
	rep.Energy = m.cfg.Energy.Breakdown(events)
	rep.NetworkFlitHops = events.FlitHops
	return rep, nil
}

// reconstructTrace merges per-thread delta samples by virtual time,
// prefix-sums them into the global active-vertex gauge and downsamples to
// at most maxPoints entries.
func reconstructTrace(deltas []exec.ActiveSample, maxPoints int) []exec.ActiveSample {
	if len(deltas) == 0 {
		return nil
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Time < deltas[j].Time })
	var run int64
	for i := range deltas {
		run += deltas[i].Active
		deltas[i].Active = run
	}
	if len(deltas) <= maxPoints {
		return deltas
	}
	step := (len(deltas) + maxPoints - 1) / maxPoints
	// A fresh slice: writing through deltas[:0] would clobber entries the
	// loop has yet to read once step > 1.
	out := make([]exec.ActiveSample, 0, maxPoints+1)
	for i := 0; i < len(deltas); i += step {
		out = append(out, deltas[i])
	}
	// Always keep the final sample so the trace ends at the true gauge
	// value rather than a stale strided point.
	if (len(deltas)-1)%step != 0 {
		out = append(out, deltas[len(deltas)-1])
	}
	return out
}

// DebugMesh exposes NoC contention counters for diagnostics: total
// queueing delay charged, the busiest link's cumulative flit-cycles, and
// that link's index (tile*4 + direction).
func (m *Machine) DebugMesh() (queuedCycles, busiestBusy uint64, busiestLink int) {
	return m.mesh.DebugStats()
}

package sim

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"crono/internal/exec"
)

// TestRunCtxPreCanceled: a context canceled before RunCtx must fail fast
// without spawning any thread.
func TestRunCtxPreCanceled(t *testing.T) {
	m := mustMachine(t, smallConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	rep, err := m.RunCtx(ctx, 4, func(exec.Ctx) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatalf("report %+v returned for canceled run", rep)
	}
	if ran {
		t.Fatal("body ran despite pre-canceled context")
	}
}

// TestRunCtxCancelMidFlight: canceling while every thread loops through a
// barrier must release all barrier waiters (no deadlock) and surface
// context.Canceled promptly.
func TestRunCtxCancelMidFlight(t *testing.T) {
	m := mustMachine(t, smallConfig())
	bar := m.NewBarrier(8)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})

	done := make(chan error, 1)
	go func() {
		_, err := m.RunCtx(ctx, 8, func(c exec.Ctx) {
			if c.TID() == 0 {
				close(started)
			}
			for {
				c.Compute(1)
				c.Barrier(bar)
				if c.Checkpoint() != nil {
					return
				}
			}
		})
		done <- err
	}()

	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not abort within 10s: barrier waiters not released")
	}
}

// TestRunCtxDeadline: a deadline that expires mid-run surfaces
// context.DeadlineExceeded.
func TestRunCtxDeadline(t *testing.T) {
	m := mustMachine(t, smallConfig())
	bar := m.NewBarrier(4)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := m.RunCtx(ctx, 4, func(c exec.Ctx) {
		for {
			c.Compute(1)
			c.Barrier(bar)
			if c.Checkpoint() != nil {
				return
			}
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunCtxCancelLeaksNoGoroutines: after an aborted run returns, every
// simulated thread goroutine must have exited.
func TestRunCtxCancelLeaksNoGoroutines(t *testing.T) {
	m := mustMachine(t, smallConfig())
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		bar := m.NewBarrier(8)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		_, err := m.RunCtx(ctx, 8, func(c exec.Ctx) {
			for {
				c.Compute(1)
				c.Barrier(bar)
				if c.Checkpoint() != nil {
					return
				}
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want context.Canceled", i, err)
		}
	}
	// RunCtx waits on its WaitGroup, so the workers are already gone;
	// allow a little slack for unrelated runtime goroutines.
	time.Sleep(20 * time.Millisecond)
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew from %d to %d: aborted runs leak threads", before, after)
	}
}

// TestRunCtxCompletedRunKeepsResult: a context canceled only after the
// run finishes must not retroactively fail it... but canceling during is
// the contract; here the context stays live and the run succeeds.
func TestRunCtxLiveContextSucceeds(t *testing.T) {
	m := mustMachine(t, smallConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := m.RunCtx(ctx, 4, func(c exec.Ctx) { c.Compute(10) })
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Threads != 4 {
		t.Fatalf("bad report %+v", rep)
	}
}

// TestCheckpointFreeInVirtualTime: Checkpoint itself must not advance the
// simulated clock; a body with N checkpoints costs the same as without.
func TestCheckpointFreeInVirtualTime(t *testing.T) {
	run := func(poll bool) uint64 {
		m := mustMachine(t, smallConfig())
		rep, err := m.RunCtx(context.Background(), 2, func(c exec.Ctx) {
			for i := 0; i < 100; i++ {
				c.Compute(3)
				if poll && c.Checkpoint() != nil {
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Time
	}
	if with, without := run(true), run(false); with != without {
		t.Fatalf("checkpoints charged simulated time: %d vs %d cycles", with, without)
	}
}

// TestBarrierAbortedWaiterDoesNotCorruptReuse regression, mirroring the
// native barrier audit: a waiter released via the abort channel must
// withdraw its arrival, or a barrier reused by a later run releases with
// fewer than parties arrivals and desynchronizes its phases.
func TestBarrierAbortedWaiterDoesNotCorruptReuse(t *testing.T) {
	m := mustMachine(t, smallConfig())
	bar := m.NewBarrier(2)
	ctx, cancel := context.WithCancel(context.Background())
	var inBarrier atomic.Bool

	_, err := m.RunCtx(ctx, 2, func(c exec.Ctx) {
		if c.TID() == 0 {
			inBarrier.Store(true)
			c.Barrier(bar) // thread 1 never arrives; released by the abort
			return
		}
		for !inBarrier.Load() {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(10 * time.Millisecond) // let thread 0 block inside the barrier
		cancel()
		for c.Checkpoint() == nil { // first observer trips the abort
			time.Sleep(time.Millisecond)
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted run returned %v, want context.Canceled", err)
	}

	// Reuse the same barrier in a fresh run: every phase must again need
	// both arrivals. With a stale count the second run both escapes
	// barriers early and strands its laggard thread at the end.
	var phase atomic.Int32
	var fail atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = m.RunCtx(context.Background(), 2, func(c exec.Ctx) {
			for round := int32(1); round <= 5; round++ {
				phase.Store(round)
				c.Barrier(bar)
				if phase.Load() != round {
					fail.Store(true)
				}
				c.Barrier(bar)
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reused barrier deadlocked the follow-up run")
	}
	if fail.Load() {
		t.Fatal("thread escaped a reused barrier early")
	}
}

package sim

import (
	"testing"

	"crono/internal/exec"
)

func smallConfig() Config {
	cfg := Default()
	cfg.Cores = 16
	return cfg
}

func mustMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := Default()
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero cores accepted")
	}
	bad = Default()
	bad.LineBytes = 32
	if err := bad.Validate(); err == nil {
		t.Fatal("non-64B lines accepted")
	}
	bad = Default()
	bad.OOOHideFraction = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("hide fraction 1.5 accepted")
	}
	bad = Default()
	bad.MemControllers = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero controllers accepted")
	}
}

func TestNewRejectsNonSquareCores(t *testing.T) {
	cfg := Default()
	cfg.Cores = 15
	if _, err := New(cfg); err == nil {
		t.Fatal("15 cores accepted")
	}
}

func TestAllocRegionsDisjointAndAligned(t *testing.T) {
	m := mustMachine(t, smallConfig())
	a := m.Alloc("a", 100, 4)
	b := m.Alloc("b", 3, 8)
	if a.Base%64 != 0 || b.Base%64 != 0 {
		t.Fatalf("regions not line aligned: %d %d", a.Base, b.Base)
	}
	if b.Base < a.Base+a.Bytes() {
		t.Fatalf("regions overlap: a=[%d,+%d) b=%d", a.Base, a.Bytes(), b.Base)
	}
	if a.At(1)-a.At(0) != 4 {
		t.Fatal("element stride wrong")
	}
}

func TestColdMissThenHit(t *testing.T) {
	m := mustMachine(t, smallConfig())
	r := m.Alloc("x", 16, 4)
	rep := m.Run(1, func(c exec.Ctx) {
		c.Load(r.At(0))
		c.Load(r.At(0))
		c.Load(r.At(1)) // same line: hit
	})
	if rep.Cache.L1DAccesses != 3 {
		t.Fatalf("accesses %d, want 3", rep.Cache.L1DAccesses)
	}
	if rep.Cache.L1DMisses[exec.MissCold] != 1 {
		t.Fatalf("cold misses %d, want 1", rep.Cache.L1DMisses[exec.MissCold])
	}
	if rep.Cache.L1DMisses[exec.MissCapacity] != 0 || rep.Cache.L1DMisses[exec.MissSharing] != 0 {
		t.Fatalf("unexpected miss classes: %v", rep.Cache.L1DMisses)
	}
	if rep.Cache.L2Misses != 1 {
		t.Fatalf("L2 misses %d, want 1", rep.Cache.L2Misses)
	}
	if rep.Breakdown[exec.CompOffChip] == 0 {
		t.Fatal("no off-chip time for a DRAM fill")
	}
	if rep.Time == 0 {
		t.Fatal("zero completion time")
	}
}

func TestCapacityMissClassification(t *testing.T) {
	cfg := smallConfig()
	m := mustMachine(t, cfg)
	// Touch far more lines than L1 capacity (32KB = 512 lines), then
	// re-touch the first line: it must be a capacity miss.
	lines := 4 * cfg.L1DSizeB / cfg.LineBytes
	r := m.Alloc("big", lines*16, 4) // 16 ints per line
	rep := m.Run(1, func(c exec.Ctx) {
		for i := 0; i < lines; i++ {
			c.Load(r.At(i * 16))
		}
		c.Load(r.At(0))
	})
	if rep.Cache.L1DMisses[exec.MissCapacity] != 1 {
		t.Fatalf("capacity misses %d, want 1 (%v)", rep.Cache.L1DMisses[exec.MissCapacity], rep.Cache.L1DMisses)
	}
	if got := rep.Cache.L1DMisses[exec.MissCold]; got != uint64(lines) {
		t.Fatalf("cold misses %d, want %d", got, lines)
	}
}

func TestSharingMissClassification(t *testing.T) {
	m := mustMachine(t, smallConfig())
	r := m.Alloc("shared", 16, 4)
	bar := m.NewBarrier(2)
	rep := m.Run(2, func(c exec.Ctx) {
		if c.TID() == 0 {
			c.Load(r.At(0)) // cold
			c.Barrier(bar)
			// t1 writes here, invalidating us.
			c.Barrier(bar)
			c.Load(r.At(0)) // sharing miss
		} else {
			c.Barrier(bar)
			c.Store(r.At(0))
			c.Barrier(bar)
		}
	})
	if rep.Cache.L1DMisses[exec.MissSharing] != 1 {
		t.Fatalf("sharing misses %d, want 1 (%v)", rep.Cache.L1DMisses[exec.MissSharing], rep.Cache.L1DMisses)
	}
	if rep.Breakdown[exec.CompSharers] == 0 {
		t.Fatal("no sharer time despite invalidation")
	}
}

func TestWriteUpgradeIsNotAMiss(t *testing.T) {
	m := mustMachine(t, smallConfig())
	r := m.Alloc("x", 16, 4)
	bar := m.NewBarrier(2)
	rep := m.Run(2, func(c exec.Ctx) {
		// Both read (line becomes shared in both L1s), then t0 writes:
		// an upgrade, not a miss.
		c.Load(r.At(0))
		c.Barrier(bar)
		if c.TID() == 0 {
			c.Store(r.At(0))
		}
	})
	// 3 data accesses; misses: 1 cold (first reader) + 1 cold (second
	// reader fetches too). The upgrade store adds no miss.
	var misses uint64
	for _, v := range rep.Cache.L1DMisses {
		misses += v
	}
	if misses != 2 {
		t.Fatalf("misses %d, want 2 (%v)", misses, rep.Cache.L1DMisses)
	}
}

func TestLockTransfersWaitInVirtualTime(t *testing.T) {
	m := mustMachine(t, smallConfig())
	l := m.NewLock()
	r := m.Alloc("shared", 16, 4)
	bar := m.NewBarrier(4)
	// Barrier-paced rounds guarantee the critical section transfers
	// between cores every round (an unpaced loop can be serialized by
	// goroutine scheduling with no hand-offs at all).
	rep := m.Run(4, func(c exec.Ctx) {
		for i := 0; i < 25; i++ {
			c.Barrier(bar)
			c.Lock(l)
			c.Load(r.At(0))
			c.Compute(20)
			c.Store(r.At(0))
			c.Unlock(l)
		}
	})
	if rep.Breakdown[exec.CompSync] == 0 {
		t.Fatal("contended lock produced no synchronization time")
	}
	// The protected data line ping-pongs between cores: sharing misses
	// and sharer time appear.
	if rep.Cache.L1DMisses[exec.MissSharing] == 0 {
		t.Fatal("no sharing misses from protected-data ping-pong")
	}
}

func TestBarrierReconcilesClocks(t *testing.T) {
	m := mustMachine(t, smallConfig())
	bar := m.NewBarrier(2)
	var t0, t1 uint64
	m.Run(2, func(c exec.Ctx) {
		if c.TID() == 0 {
			c.Compute(10000) // arrives late
		}
		c.Barrier(bar)
		if c.TID() == 0 {
			t0 = nowOf(c)
		} else {
			t1 = nowOf(c)
		}
	})
	if t0 != t1 {
		t.Fatalf("clocks differ after barrier: %d vs %d", t0, t1)
	}
	if t0 < 10000 {
		t.Fatalf("barrier released at %d before slowest arrival", t0)
	}
}

func nowOf(c exec.Ctx) uint64 { return c.(*ctx).now }

func TestBarrierChargesWaitersSync(t *testing.T) {
	m := mustMachine(t, smallConfig())
	bar := m.NewBarrier(2)
	rep := m.Run(2, func(c exec.Ctx) {
		if c.TID() == 0 {
			c.Compute(5000)
		}
		c.Barrier(bar)
	})
	if rep.Breakdown[exec.CompSync] < 5000 {
		t.Fatalf("sync %d, want >= 5000", rep.Breakdown[exec.CompSync])
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	m := mustMachine(t, smallConfig())
	bar := m.NewBarrier(3)
	rep := m.Run(3, func(c exec.Ctx) {
		for i := 0; i < 20; i++ {
			c.Compute(c.TID()*13 + 1)
			c.Barrier(bar)
		}
	})
	if rep.Time == 0 {
		t.Fatal("no time elapsed")
	}
}

func TestOOOHidesMemoryLatency(t *testing.T) {
	run := func(ct CoreType) *exec.Report {
		cfg := smallConfig()
		cfg.CoreType = ct
		m := mustMachine(t, cfg)
		r := m.Alloc("stream", 1<<14, 4)
		return m.Run(1, func(c exec.Ctx) {
			for i := 0; i < 1<<14; i += 16 {
				c.Load(r.At(i))
			}
		})
	}
	in := run(InOrder)
	ooo := run(OutOfOrder)
	if ooo.Time >= in.Time {
		t.Fatalf("OOO (%d) not faster than in-order (%d) on a memory stream", ooo.Time, in.Time)
	}
	// OOO must not hide everything.
	if ooo.Breakdown[exec.CompL1ToL2] == 0 {
		t.Fatal("OOO hid all L1->L2 time")
	}
}

func TestOOODoesNotHideSharersOrSync(t *testing.T) {
	for _, ct := range []CoreType{InOrder, OutOfOrder} {
		cfg := smallConfig()
		cfg.CoreType = ct
		m := mustMachine(t, cfg)
		l := m.NewLock()
		rep := m.Run(2, func(c exec.Ctx) {
			for i := 0; i < 30; i++ {
				c.Lock(l)
				c.Compute(50)
				c.Unlock(l)
			}
		})
		if rep.Breakdown[exec.CompSync] == 0 {
			t.Fatalf("%v: no sync time", ct)
		}
	}
}

func TestBreakdownAccountsAllThreadTime(t *testing.T) {
	m := mustMachine(t, smallConfig())
	r := m.Alloc("x", 1024, 4)
	l := m.NewLock()
	bar := m.NewBarrier(2)
	rep := m.Run(2, func(c exec.Ctx) {
		for i := 0; i < 200; i++ {
			c.Load(r.At((i * 37) % 1024))
			if i%10 == 0 {
				c.Lock(l)
				c.Store(r.At(0))
				c.Unlock(l)
			}
		}
		c.Barrier(bar)
	})
	// Each thread's virtual clock equals the sum of its attributed
	// components; the aggregate breakdown must be >= max thread time and
	// <= threads * max.
	total := rep.Breakdown.Total()
	if total < rep.Time || total > rep.Time*2 {
		t.Fatalf("breakdown total %d vs time %d (2 threads)", total, rep.Time)
	}
}

func TestEnergyAndNetworkCounters(t *testing.T) {
	m := mustMachine(t, smallConfig())
	r := m.Alloc("x", 4096, 4)
	rep := m.Run(2, func(c exec.Ctx) {
		for i := 0; i < 1000; i++ {
			c.Load(r.At((i * 16) % 4096))
		}
		c.Compute(100)
	})
	if rep.Energy.Total() <= 0 {
		t.Fatal("no energy recorded")
	}
	if rep.Energy[exec.EnergyRouter] <= 0 || rep.Energy[exec.EnergyLink] <= 0 {
		t.Fatal("no network energy")
	}
	if rep.Energy[exec.EnergyDRAM] <= 0 {
		t.Fatal("no DRAM energy")
	}
	if rep.NetworkFlitHops == 0 {
		t.Fatal("no flit hops")
	}
	if rep.TotalInstructions() == 0 {
		t.Fatal("no instructions")
	}
}

func TestLocalityAwareAvoidsL1Thrashing(t *testing.T) {
	base := smallConfig()
	la := smallConfig()
	la.LocalityAware = true
	la.LocalityThreshold = 4
	stream := func(cfg Config) *exec.Report {
		m := mustMachine(t, cfg)
		lines := 4 * cfg.L1DSizeB / cfg.LineBytes
		r := m.Alloc("stream", lines*16, 4)
		return m.Run(1, func(c exec.Ctx) {
			// Two passes over a stream with no reuse within L1 capacity.
			for p := 0; p < 2; p++ {
				for i := 0; i < lines; i++ {
					c.Load(r.At(i * 16))
				}
			}
		})
	}
	b := stream(base)
	l := stream(la)
	var bMiss, lMiss uint64
	for i := range b.Cache.L1DMisses {
		bMiss += b.Cache.L1DMisses[i]
		lMiss += l.Cache.L1DMisses[i]
	}
	if lMiss >= bMiss {
		t.Fatalf("locality-aware misses %d not below baseline %d", lMiss, bMiss)
	}
}

func TestActiveTelemetry(t *testing.T) {
	m := mustMachine(t, smallConfig())
	rep := m.Run(2, func(c exec.Ctx) {
		for i := 0; i < 200; i++ {
			c.Active(1)
			c.Compute(5)
			c.Active(-1)
		}
	})
	if len(rep.ActiveTrace) == 0 {
		t.Fatal("no active-vertex samples")
	}
	for i := 1; i < len(rep.ActiveTrace); i++ {
		if rep.ActiveTrace[i].Time < rep.ActiveTrace[i-1].Time {
			t.Fatal("trace not time ordered")
		}
	}
}

func TestRunPanicsOnTooManyThreads(t *testing.T) {
	m := mustMachine(t, smallConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for threads > cores")
		}
	}()
	m.Run(17, func(exec.Ctx) {})
}

func TestForeignHandlesPanic(t *testing.T) {
	m := mustMachine(t, smallConfig())
	c := &ctx{m: m, threads: 1}
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("no panic for foreign %s", name)
			}
		}()
		f()
	}
	check("lock", func() { c.Lock(struct{}{}) })
	check("unlock", func() { c.Unlock(struct{}{}) })
	check("barrier", func() { c.Barrier(struct{}{}) })
}

func TestSingleThreadDeterminism(t *testing.T) {
	run := func() *exec.Report {
		m := mustMachine(t, smallConfig())
		r := m.Alloc("x", 8192, 4)
		return m.Run(1, func(c exec.Ctx) {
			for i := 0; i < 5000; i++ {
				a := (i * 131) % 8192
				if i%3 == 0 {
					c.Store(r.At(a))
				} else {
					c.Load(r.At(a))
				}
			}
		})
	}
	a, b := run(), run()
	if a.Time != b.Time {
		t.Fatalf("nondeterministic single-thread time: %d vs %d", a.Time, b.Time)
	}
	if a.Breakdown != b.Breakdown {
		t.Fatalf("nondeterministic breakdown: %v vs %v", a.Breakdown, b.Breakdown)
	}
	if a.Cache != b.Cache {
		t.Fatalf("nondeterministic cache stats: %+v vs %+v", a.Cache, b.Cache)
	}
}

func TestNextLinePrefetchHelpsStreams(t *testing.T) {
	run := func(pf bool) *exec.Report {
		cfg := smallConfig()
		cfg.NextLinePrefetch = pf
		m := mustMachine(t, cfg)
		r := m.Alloc("stream", 1<<14, 4)
		return m.Run(1, func(c exec.Ctx) {
			// Two passes so prefetched lines get demand hits.
			for pass := 0; pass < 2; pass++ {
				for i := 0; i < 1<<14; i += 16 {
					c.Load(r.At(i))
				}
			}
		})
	}
	base := run(false)
	pf := run(true)
	var bm, pm uint64
	for i := range base.Cache.L1DMisses {
		bm += base.Cache.L1DMisses[i]
		pm += pf.Cache.L1DMisses[i]
	}
	if pm >= bm {
		t.Fatalf("prefetch misses %d not below baseline %d", pm, bm)
	}
	if pf.Time >= base.Time {
		t.Fatalf("prefetch time %d not below baseline %d", pf.Time, base.Time)
	}
}

func TestHeteroMasterOnlyCoreZeroHidesLatency(t *testing.T) {
	cfg := smallConfig()
	cfg.HeteroMasterOOO = true
	m := mustMachine(t, cfg)
	if !m.coreIsOOO(0) || m.coreIsOOO(1) {
		t.Fatal("hetero mapping wrong")
	}
	cfg = smallConfig()
	cfg.CoreType = OutOfOrder
	m = mustMachine(t, cfg)
	if !m.coreIsOOO(0) || !m.coreIsOOO(7) {
		t.Fatal("homogeneous OOO mapping wrong")
	}
}

func TestThreadPlacementSpreads(t *testing.T) {
	cfg := Default()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 16, 64, 100, 256} {
		seen := map[int]bool{}
		var xs, ys map[int]bool
		xs, ys = map[int]bool{}, map[int]bool{}
		for tid := 0; tid < p; tid++ {
			core := m.placeThread(tid, p)
			if core < 0 || core >= cfg.Cores {
				t.Fatalf("p=%d tid=%d core %d out of range", p, tid, core)
			}
			if seen[core] {
				t.Fatalf("p=%d: core %d assigned twice", p, core)
			}
			seen[core] = true
			xs[core%16] = true
			ys[core/16] = true
		}
		// 16+ threads must span multiple mesh rows and columns.
		if p >= 16 && (len(xs) < 4 || len(ys) < 4) {
			t.Fatalf("p=%d: placement aliases into %d columns x %d rows", p, len(xs), len(ys))
		}
	}
}

func TestWindowThrottleBalancesCapture(t *testing.T) {
	// A shared work counter distributed via a lock: without the window,
	// the host scheduler could hand most units to one simulated thread.
	cfg := smallConfig()
	m := mustMachine(t, cfg)
	l := m.NewLock()
	r := m.Alloc("work", 1<<16, 4)
	next := 0
	rep := m.Run(8, func(c exec.Ctx) {
		for {
			c.Lock(l)
			unit := next
			next++
			c.Unlock(l)
			if unit >= 64 {
				return
			}
			// Each unit is substantial virtual work.
			for i := 0; i < 2000; i++ {
				c.Load(r.At((unit*997 + i*31) % (1 << 16)))
			}
		}
	})
	if v := rep.Variability(); v > 0.6 {
		t.Fatalf("dynamic work severely imbalanced: variability %g", v)
	}
}

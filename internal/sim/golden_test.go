package sim

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"crono/internal/exec"
)

// goldenFingerprint reduces a single-thread report to a canonical string
// covering every externally visible model output: completion time, the
// full breakdown, cache statistics, instruction and flit-hop counts, and
// the energy components. Floating-point energy is formatted at fixed
// precision; single-thread runs evaluate the same float operations in
// the same order, so the digits are stable.
func goldenFingerprint(rep *exec.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "time=%d", rep.Time)
	fmt.Fprintf(&b, " brk=%v", rep.Breakdown)
	fmt.Fprintf(&b, " l1a=%d l1m=%v l2a=%d l2m=%d",
		rep.Cache.L1DAccesses, rep.Cache.L1DMisses, rep.Cache.L2Accesses, rep.Cache.L2Misses)
	fmt.Fprintf(&b, " instr=%d flits=%d", rep.TotalInstructions(), rep.NetworkFlitHops)
	fmt.Fprintf(&b, " energy=%.3f", rep.Energy.Total())
	return b.String()
}

// goldenWorkloads are deterministic single-thread workloads spanning the
// model's feature surface. The expected fingerprints were captured from
// the pre-sharding global-lock simulator; the sharded memory system must
// reproduce them bit-for-bit on one thread.
var goldenWorkloads = []struct {
	name string
	cfg  func() Config
	body func(m *Machine) *exec.Report
	want string
}{
	{
		name: "mixed-loads-stores",
		cfg:  smallConfig,
		body: func(m *Machine) *exec.Report {
			r := m.Alloc("x", 8192, 4)
			return m.Run(1, func(c exec.Ctx) {
				for i := 0; i < 5000; i++ {
					a := (i * 131) % 8192
					if i%3 == 0 {
						c.Store(r.At(a))
					} else {
						c.Load(r.At(a))
					}
				}
			})
		},
		want: "time=77197 brk=[5000 10240 0 0 61957 0] l1a=5000 l1m=[512 0 0] l2a=512 l2m=512 instr=5000 flits=30720 energy=510080.000",
	},
	{
		name: "sync-and-spans",
		cfg:  smallConfig,
		body: func(m *Machine) *exec.Report {
			r := m.Alloc("x", 4096, 8)
			l := m.NewLock()
			bar := m.NewBarrier(1)
			return m.Run(1, func(c exec.Ctx) {
				for i := 0; i < 50; i++ {
					c.Lock(l)
					c.Store(r.At(i))
					c.Unlock(l)
					c.LoadSpan(r.At(0), 512, 8)
					c.StoreSpan(r.At(512), 100, 8)
					c.Compute(37)
					c.Active(1)
					c.Barrier(bar)
					c.Active(-1)
				}
			})
		},
		want: "time=47192 brk=[32600 1544 0 0 9447 3601] l1a=30750 l1m=[78 0 0] l2a=78 l2m=78 instr=32600 flits=4656 energy=568464.000",
	},
	{
		name: "locality-aware",
		cfg: func() Config {
			cfg := smallConfig()
			cfg.LocalityAware = true
			cfg.LocalityThreshold = 4
			return cfg
		},
		body: func(m *Machine) *exec.Report {
			lines := 2 * m.Config().L1DSizeB / m.Config().LineBytes
			r := m.Alloc("stream", lines*16, 4)
			return m.Run(1, func(c exec.Ctx) {
				for p := 0; p < 6; p++ {
					for i := 0; i < lines; i++ {
						if p%2 == 0 {
							c.Load(r.At(i * 16))
						} else {
							c.Store(r.At(i * 16))
						}
					}
				}
			})
		},
		want: "time=253157 brk=[6144 123109 0 0 123904 0] l1a=6144 l1m=[1024 1024 0] l2a=6144 l2m=1024 instr=6144 flits=175104 energy=1973760.000",
	},
	{
		name: "prefetch-ooo",
		cfg: func() Config {
			cfg := smallConfig()
			cfg.NextLinePrefetch = true
			cfg.CoreType = OutOfOrder
			return cfg
		},
		body: func(m *Machine) *exec.Report {
			r := m.Alloc("stream", 1<<14, 4)
			return m.Run(1, func(c exec.Ctx) {
				for pass := 0; pass < 2; pass++ {
					for i := 0; i < 1<<14; i += 16 {
						c.Load(r.At(i))
					}
				}
			})
		},
		want: "time=50559 brk=[2048 10687 0 0 37824 0] l1a=2048 l1m=[1024 512 0] l2a=1536 l2m=1024 instr=2048 flits=95744 energy=1167104.000",
	},
}

// TestGoldenSingleThreadBitIdentical pins the single-thread model output
// to the exact values produced by the pre-sharding simulator. Run with
// CRONO_GOLDEN_GEN=1 to print current fingerprints instead of asserting
// (used once to capture the baseline; any future intentional model change
// must regenerate and justify these).
func TestGoldenSingleThreadBitIdentical(t *testing.T) {
	gen := os.Getenv("CRONO_GOLDEN_GEN") != ""
	for _, w := range goldenWorkloads {
		t.Run(w.name, func(t *testing.T) {
			m := mustMachine(t, w.cfg())
			got := goldenFingerprint(w.body(m))
			if gen {
				fmt.Printf("GOLDEN %s: %s\n", w.name, got)
				return
			}
			if got != w.want {
				t.Errorf("single-thread output drifted from the global-lock baseline\n got: %s\nwant: %s", got, w.want)
			}
		})
	}
}

package sim

import (
	"testing"

	"crono/internal/exec"
)

// TestLocalityThresholdValidation is the regression test for the reuse
// counter wrap bug: the per-line counters are uint8 and saturate at 255,
// so a threshold of 256+ could never be crossed — every access to every
// line would be served remotely forever, silently. Such configurations
// are now rejected up front.
func TestLocalityThresholdValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.LocalityAware = true
	cfg.LocalityThreshold = 256
	if _, err := New(cfg); err == nil {
		t.Fatal("locality threshold 256 accepted despite uint8 reuse counters")
	}
	cfg.LocalityThreshold = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("locality threshold 0 accepted")
	}
	cfg.LocalityThreshold = 255
	if _, err := New(cfg); err != nil {
		t.Fatalf("locality threshold 255 rejected: %v", err)
	}
	// With the ablation off, the threshold is inert and stays unchecked
	// (Default() ships 4; callers only flip LocalityAware).
	off := smallConfig()
	off.LocalityThreshold = 9999
	if _, err := New(off); err != nil {
		t.Fatalf("inert threshold rejected with LocalityAware off: %v", err)
	}
}

// TestReuseCounterSaturatesAtMaxThreshold runs the extreme legal
// threshold (255): the 255 cold touches are served remotely, the 256th
// promotes the line into the private L1, and the rest hit. The counter
// must end pinned at exactly 255 — saturated, not wrapped (an unclamped
// uint8 increment would have wrapped it back toward zero and the line
// would never promote).
func TestReuseCounterSaturatesAtMaxThreshold(t *testing.T) {
	cfg := smallConfig()
	cfg.LocalityAware = true
	cfg.LocalityThreshold = 255
	m := mustMachine(t, cfg)
	r := m.Alloc("hotline", 16, 4)
	const touches = 400
	rep := m.Run(1, func(c exec.Ctx) {
		for i := 0; i < touches; i++ {
			c.Load(r.At(0))
		}
	})
	line := r.Base >> m.lineBits
	core := m.placeThread(0, 1)
	if got := m.cores[core].reuse[line]; got != reuseSaturation {
		t.Fatalf("reuse counter %d after %d touches, want saturation at %d", got, touches, reuseSaturation)
	}
	// 255 remote services + 1 local fill; the remaining 144 touches hit.
	if got := rep.Cache.L1DMisses[exec.MissCold]; got != 1 {
		t.Errorf("cold misses %d, want exactly 1 (the promotion fill)", got)
	}
	if got, want := rep.Cache.L2Accesses, uint64(256); got != want {
		t.Errorf("L2 accesses %d, want %d (255 remote + 1 fill)", got, want)
	}
	if got, want := rep.Cache.L1DAccesses, uint64(touches); got != want {
		t.Errorf("L1 accesses %d, want %d", got, want)
	}
}

package sim

import (
	"fmt"
	"strings"
	"testing"

	"crono/internal/exec"
)

// countFingerprint reduces a report to its schedule-independent aggregate
// event counts: total L1 accesses, per-class miss sums, L2 traffic,
// instructions, and the energy components that derive from event counts
// alone. Router and link energy are excluded — they derive from flit-hops,
// which depend on where placeThread puts each thread, so they legitimately
// vary with the thread count (though not with the host schedule).
func countFingerprint(rep *exec.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "l1a=%d l1m=%v l2a=%d l2m=%d instr=%d",
		rep.Cache.L1DAccesses, rep.Cache.L1DMisses, rep.Cache.L2Accesses, rep.Cache.L2Misses,
		rep.TotalInstructions())
	for _, comp := range []exec.EnergyComponent{exec.EnergyL1I, exec.EnergyL1D, exec.EnergyL2, exec.EnergyDir, exec.EnergyDRAM} {
		fmt.Fprintf(&b, " %s=%.3f", comp, rep.Energy[comp])
	}
	return b.String()
}

// The invariant workload divides a fixed set of cache lines into slices
// and deals the slices round-robin over however many threads run, so the
// total work is identical at every thread count. It is load-only (dirty
// write-backs would make eviction traffic placement-dependent) and each
// line is touched twice back to back (one cold miss, one guaranteed L1
// hit). The line count stays far below one L1's capacity so a single
// thread holding every slice in one cache evicts nothing.
const (
	invSlices        = 16
	invLinesPerSlice = 24
)

func runInvariantWorkload(t *testing.T, cfg Config, threads int) *exec.Report {
	t.Helper()
	m := mustMachine(t, cfg)
	r := m.Alloc("inv", invSlices*invLinesPerSlice*16, 4) // 16 4-byte elems per line
	return m.Run(threads, func(c exec.Ctx) {
		for s := c.TID(); s < invSlices; s += c.Threads() {
			base := s * invLinesPerSlice * 16
			for l := 0; l < invLinesPerSlice; l++ {
				a := r.At(base + l*16)
				c.Load(a)
				c.Load(a)
			}
		}
	})
}

// TestAggregateCountsThreadInvariant pins the sharded memory system's
// count guarantee: for a fixed workload, total L1 accesses, the per-class
// miss sums, L2 traffic and count-derived energy are identical whether
// the work runs on 1, 4 or 16 simulated threads. Timing may shift (lax
// synchronization always permitted that); counts may not. CI runs this
// under -race, which also sweeps the fast-path/home-stripe/core-lock
// interleavings for data races.
func TestAggregateCountsThreadInvariant(t *testing.T) {
	var want string
	for _, threads := range []int{1, 4, 16} {
		rep := runInvariantWorkload(t, smallConfig(), threads)
		got := countFingerprint(rep)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("aggregate counts differ at %d threads\n got: %s\nwant: %s", threads, got, want)
		}
	}
}

// TestAggregateCountsRepeatable: two identical multi-threaded runs must
// agree on every aggregate count even though the host scheduler
// interleaves them differently.
func TestAggregateCountsRepeatable(t *testing.T) {
	a := runInvariantWorkload(t, smallConfig(), 16)
	b := runInvariantWorkload(t, smallConfig(), 16)
	if countFingerprint(a) != countFingerprint(b) {
		t.Errorf("repeated runs disagree\n  a: %s\n  b: %s", countFingerprint(a), countFingerprint(b))
	}
}

// TestSerialMemoryMatchesSharded: the SerialMemory baseline (the old
// global-lock discipline) and the sharded memory system are the same
// model. Aggregate counts must match at every thread count, and a
// single-threaded run must match bit for bit, timing included.
func TestSerialMemoryMatchesSharded(t *testing.T) {
	for _, threads := range []int{1, 4, 16} {
		sharded := runInvariantWorkload(t, smallConfig(), threads)
		serialCfg := smallConfig()
		serialCfg.SerialMemory = true
		serial := runInvariantWorkload(t, serialCfg, threads)
		if countFingerprint(sharded) != countFingerprint(serial) {
			t.Errorf("serial and sharded counts differ at %d threads\nsharded: %s\n serial: %s",
				threads, countFingerprint(sharded), countFingerprint(serial))
		}
	}
	sharded := runInvariantWorkload(t, smallConfig(), 1)
	serialCfg := smallConfig()
	serialCfg.SerialMemory = true
	serial := runInvariantWorkload(t, serialCfg, 1)
	if goldenFingerprint(sharded) != goldenFingerprint(serial) {
		t.Errorf("single-thread serial baseline not bit-identical\nsharded: %s\n serial: %s",
			goldenFingerprint(sharded), goldenFingerprint(serial))
	}
}

// TestContendedStoresStayCoherent drives every thread through stores to
// the same few lines, forcing the cross-core paths (invalidations, E->M
// upgrade races, L2 victim back-invalidation) to interleave on the
// sharded locks. Asserted invariants are the schedule-independent ones:
// instruction and access totals, and per-thread cycle conservation
// (virtual time equals the breakdown sum). Under -race this is the
// deadlock/data-race stress for the home->core lock order.
func TestContendedStoresStayCoherent(t *testing.T) {
	cfg := smallConfig()
	cfg.L2SliceSizeB = 16 << 10 // small slices: force L2 victims too
	m := mustMachine(t, cfg)
	const perThread = 3000
	r := m.Alloc("hot", 1<<14, 4)
	rep := m.Run(16, func(c exec.Ctx) {
		for i := 0; i < perThread; i++ {
			a := ((i*131 + c.TID()*17) * 16) % (1 << 14)
			if i%2 == 0 {
				c.Store(r.At(a))
			} else {
				c.Load(r.At(a))
			}
		}
	})
	if got, want := rep.TotalInstructions(), uint64(16*perThread); got != want {
		t.Errorf("instructions %d, want %d", got, want)
	}
	if got, want := rep.Cache.L1DAccesses, uint64(16*perThread); got != want {
		t.Errorf("L1 accesses %d, want %d", got, want)
	}
	var threadSum uint64
	for tid, tt := range rep.ThreadTime {
		if tt == 0 {
			t.Errorf("thread %d reports zero virtual time", tid)
		}
		threadSum += tt
	}
	if bt := rep.Breakdown.Total(); bt != threadSum {
		t.Errorf("breakdown total %d != thread-time sum %d: cycles leaked across shard boundaries", bt, threadSum)
	}
}

package sim

import "testing"

// TestLineStatArenaPointersStable: handed-out entries must keep their
// identity and contents as slabs grow, exactly like individually
// heap-allocated lineStats would.
func TestLineStatArenaPointersStable(t *testing.T) {
	var a lineStatArena
	n := lineStatBlock*3 + 7 // force several slab rollovers
	ptrs := make([]*lineStat, n)
	for i := 0; i < n; i++ {
		ls := a.get()
		if ls.busy != 0 || ls.horizon != 0 || ls.count != 0 {
			t.Fatalf("entry %d not zero-valued", i)
		}
		ls.count = uint64(i) + 1
		ptrs[i] = ls
	}
	for i, ls := range ptrs {
		if ls.count != uint64(i)+1 {
			t.Fatalf("entry %d clobbered: count %d", i, ls.count)
		}
	}
	for i := 1; i < n; i++ {
		if ptrs[i] == ptrs[i-1] {
			t.Fatalf("entries %d and %d alias", i-1, i)
		}
	}
	if len(a.slabs) != 4 {
		t.Fatalf("expected 4 slabs for %d entries, got %d", n, len(a.slabs))
	}
}

// TestHomeShardLineStatMemoized: repeated lookups of a line return the
// same arena entry.
func TestHomeShardLineStatMemoized(t *testing.T) {
	hs := &homeShard{lines: make(map[uint64]*lineStat)}
	a := hs.lineStat(42)
	b := hs.lineStat(42)
	if a != b {
		t.Fatal("lineStat not memoized")
	}
	if hs.lineStat(43) == a {
		t.Fatal("distinct lines share a stat entry")
	}
}

package sim

import (
	"testing"

	"crono/internal/exec"
)

// TestBroadcastInvalidationBeyondPointers: more sharers than ACKWise-4
// pointers, then a write — every private copy must be invalidated
// (broadcast) and re-reads classify as sharing misses.
func TestBroadcastInvalidationBeyondPointers(t *testing.T) {
	m := mustMachine(t, smallConfig()) // 16 cores, 4 pointers
	r := m.Alloc("hot", 16, 4)
	bar := m.NewBarrier(9)
	rep := m.Run(9, func(c exec.Ctx) {
		if c.TID() < 8 {
			c.Load(r.At(0)) // 8 sharers > 4 pointers
		}
		c.Barrier(bar)
		if c.TID() == 8 {
			c.Store(r.At(0)) // broadcast invalidation
		}
		c.Barrier(bar)
		if c.TID() < 8 {
			c.Load(r.At(0)) // sharing miss for every previous sharer
		}
	})
	if got := rep.Cache.L1DMisses[exec.MissSharing]; got != 8 {
		t.Fatalf("sharing misses %d, want 8 (%v)", got, rep.Cache.L1DMisses)
	}
}

// TestDirtyLineFlushedToReader: a reader after a writer gets the data via
// a sharer flush (L2Home-Sharers time) and both end up with consistent
// state for further hits.
func TestDirtyLineFlushedToReader(t *testing.T) {
	m := mustMachine(t, smallConfig())
	r := m.Alloc("x", 16, 4)
	bar := m.NewBarrier(2)
	rep := m.Run(2, func(c exec.Ctx) {
		if c.TID() == 0 {
			c.Store(r.At(0)) // M in core 0
		}
		c.Barrier(bar)
		if c.TID() == 1 {
			c.Load(r.At(0)) // flush + downgrade
			c.Load(r.At(0)) // hit
		}
	})
	if rep.Breakdown[exec.CompSharers] == 0 {
		t.Fatal("no sharer time for dirty flush")
	}
	// Accesses: 1 store + 2 loads; misses: 2 (store cold, load cold).
	if rep.Cache.L1DAccesses != 3 {
		t.Fatalf("accesses %d", rep.Cache.L1DAccesses)
	}
	var misses uint64
	for _, v := range rep.Cache.L1DMisses {
		misses += v
	}
	if misses != 2 {
		t.Fatalf("misses %d, want 2", misses)
	}
}

// TestL2BackInvalidation: with a tiny L2, streaming far past its capacity
// forces inclusive back-invalidation of L1 copies; the machine must stay
// consistent and re-accesses must miss.
func TestL2BackInvalidation(t *testing.T) {
	cfg := smallConfig()
	cfg.L2SliceSizeB = 16 << 10 // 256 lines per slice, 4096 total
	m := mustMachine(t, cfg)
	lines := 4096 * 4
	r := m.Alloc("huge", lines*16, 4)
	rep := m.Run(1, func(c exec.Ctx) {
		for i := 0; i < lines; i++ {
			c.Load(r.At(i * 16))
		}
		// The first line was back-invalidated from L1 when its L2 entry
		// was evicted (or evicted from L1 itself): either way a miss.
		c.Load(r.At(0))
	})
	if rep.Cache.L1DMisses[exec.MissCapacity] == 0 {
		t.Fatalf("no capacity-class miss after back-invalidation: %v", rep.Cache.L1DMisses)
	}
	if rep.Cache.L2Misses < uint64(lines) {
		t.Fatalf("L2 misses %d below stream length %d", rep.Cache.L2Misses, lines)
	}
}

// TestLocalityAwareRemoteWritesStayCoherent: remote (uncached) writes
// must invalidate cached copies so later reads see a coherent protocol
// state (timing model only, but the state machine must not wedge).
func TestLocalityAwareRemoteWritesStayCoherent(t *testing.T) {
	cfg := smallConfig()
	cfg.LocalityAware = true
	cfg.LocalityThreshold = 2
	m := mustMachine(t, cfg)
	r := m.Alloc("x", 16, 4)
	bar := m.NewBarrier(2)
	rep := m.Run(2, func(c exec.Ctx) {
		for i := 0; i < 8; i++ {
			if c.TID() == 0 {
				c.Store(r.At(0))
			} else {
				c.Load(r.At(0))
			}
			c.Barrier(bar)
		}
	})
	if rep.Time == 0 || rep.Cache.L2Accesses == 0 {
		t.Fatal("remote accesses not modeled")
	}
}

// TestPrefetchNeverGoesOffChip: the next-line prefetcher must not add
// DRAM traffic (it only promotes lines already on chip).
func TestPrefetchNeverGoesOffChip(t *testing.T) {
	run := func(pf bool) *exec.Report {
		cfg := smallConfig()
		cfg.NextLinePrefetch = pf
		m := mustMachine(t, cfg)
		r := m.Alloc("s", 4096, 4)
		return m.Run(1, func(c exec.Ctx) {
			for i := 0; i < 4096; i += 16 {
				c.Load(r.At(i))
			}
		})
	}
	base := run(false)
	pf := run(true)
	if pf.Cache.L2Misses > base.Cache.L2Misses {
		t.Fatalf("prefetch added off-chip fills: %d > %d", pf.Cache.L2Misses, base.Cache.L2Misses)
	}
}

// TestMCPBacklogSerializesOversubscription: when every thread hammers
// locks, aggregate MCP demand exceeds capacity and synchronization time
// must dominate — the paper's lock-per-edge wall.
func TestMCPBacklogSerializesOversubscription(t *testing.T) {
	m := mustMachine(t, smallConfig())
	locks := make([]exec.Lock, 64)
	for i := range locks {
		locks[i] = m.NewLock()
	}
	rep := m.Run(16, func(c exec.Ctx) {
		for i := 0; i < 200; i++ {
			l := locks[(c.TID()*31+i)%64]
			c.Lock(l)
			c.Unlock(l)
		}
	})
	f := rep.Breakdown.Fractions()
	if f[exec.CompSync] < 0.5 {
		t.Fatalf("sync fraction %.2f under lock oversubscription, want > 0.5", f[exec.CompSync])
	}
}

// TestHierarchyInclusionInvariant: no line may be valid in an L1 without
// a live directory entry (inclusive L2). Exercised via a mixed workload,
// then verified through the directory's own view.
func TestHierarchyInclusionInvariant(t *testing.T) {
	cfg := smallConfig()
	cfg.L2SliceSizeB = 16 << 10
	m := mustMachine(t, cfg)
	r := m.Alloc("mix", 1<<15, 4)
	bar := m.NewBarrier(4)
	m.Run(4, func(c exec.Ctx) {
		for i := 0; i < 4000; i++ {
			a := (i*131 + c.TID()*7919) % (1 << 15)
			if i%3 == 0 {
				c.Store(r.At(a))
			} else {
				c.Load(r.At(a))
			}
		}
		c.Barrier(bar)
	})
	// Every line still valid in some L1 must be tracked by the directory.
	base := r.Base >> 6
	lines := r.Bytes() / 64
	for l := base; l < base+lines; l++ {
		holders := 0
		for core := 0; core < cfg.Cores; core++ {
			if m.cores[core].l1.Peek(l) != 0 {
				holders++
			}
		}
		if holders > 0 && m.dirs.Stripe(l).Sharers(l) == 0 {
			t.Fatalf("line %d cached by %d cores but idle in directory", l, holders)
		}
	}
}

// TestEveryCycleIsAttributed: per-thread virtual time must equal the sum
// of breakdown components exactly — the completion-time decomposition
// conserves cycles.
func TestEveryCycleIsAttributed(t *testing.T) {
	m := mustMachine(t, smallConfig())
	r := m.Alloc("x", 1<<14, 4)
	l := m.NewLock()
	bar := m.NewBarrier(4)
	rep := m.Run(4, func(c exec.Ctx) {
		for i := 0; i < 500; i++ {
			a := (i*173 + c.TID()*977) % (1 << 14)
			if i%4 == 0 {
				c.Store(r.At(a))
			} else {
				c.Load(r.At(a))
			}
			if i%16 == 0 {
				c.Lock(l)
				c.Compute(3)
				c.Unlock(l)
			}
			if i%100 == 0 {
				c.Barrier(bar)
			}
		}
		c.LoadSpan(r.At(0), 256, 4)
		c.Barrier(bar)
	})
	var threadSum uint64
	for _, tt := range rep.ThreadTime {
		threadSum += tt
	}
	if rep.Breakdown.Total() != threadSum {
		t.Fatalf("breakdown %d != thread time %d: cycles leaked",
			rep.Breakdown.Total(), threadSum)
	}
}

// TestReconstructTraceKeepsLastSample regression (mirrors the native
// platform's test): a non-divisible downsampling step must still keep
// the final sample, and the output must not alias the input.
func TestReconstructTraceKeepsLastSample(t *testing.T) {
	deltas := make([]exec.ActiveSample, 8)
	for i := range deltas {
		deltas[i] = exec.ActiveSample{Time: uint64(i), Active: 1}
	}
	out := reconstructTrace(deltas, 3) // step 3: strided 0, 3, 6 + final 7
	want := []exec.ActiveSample{{Time: 0, Active: 1}, {Time: 3, Active: 4}, {Time: 6, Active: 7}, {Time: 7, Active: 8}}
	if len(out) != len(want) {
		t.Fatalf("trace has %d points %v, want %d", len(out), out, len(want))
	}
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("trace[%d] = %+v, want %+v", i, out[i], w)
		}
	}
}

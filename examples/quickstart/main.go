// Quickstart: generate a synthetic sparse graph, run single-source
// shortest paths on the native platform, and inspect the run report.
package main

import (
	"fmt"
	"log"

	"crono"
)

func main() {
	// A GTgraph-style sparse graph: ~16 directed edges per vertex, the
	// paper's default synthetic input family.
	g := crono.GenerateGraph(crono.GraphSparse, 1<<15, 42)
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.1f\n", g.N, g.M(), g.AvgDegree())

	// Run SSSP from vertex 0 on 8 goroutines.
	res, err := crono.SSSP(crono.NewNative(), g, 0, 8)
	if err != nil {
		log.Fatal(err)
	}

	reached := 0
	var far int32
	for _, d := range res.Dist {
		if d < 1<<29 {
			reached++
			if d > far {
				far = d
			}
		}
	}
	fmt.Printf("SSSP: reached %d/%d vertices, eccentricity %d, %d relaxations in %d pareto fronts\n",
		reached, g.N, far, res.Relaxations, res.Rounds)
	fmt.Printf("completion time: %.2f ms on %d threads (variability %.3f)\n",
		float64(res.Report.Time)/1e6, res.Report.Threads, res.Report.Variability())

	// The same call runs unchanged on the simulated 256-core machine.
	m, err := crono.NewSimulator(crono.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	small := crono.GenerateGraph(crono.GraphSparse, 1<<13, 42)
	simRes, err := crono.SSSP(m, small, 0, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated (64 of 256 cores): %d cycles, breakdown %v\n",
		simRes.Report.Time, simRes.Report.Breakdown.Fractions())
}

// Roadnet: the paper's path-planning motivation (self-driving cars).
// Builds a road-network-like graph, plans routes with SSSP, measures
// reachability with BFS, and shows how both scale with threads on the
// host.
package main

import (
	"fmt"
	"log"

	"crono"
)

func main() {
	// A synthetic road network: near-planar lattice with dead ends and
	// a few highways, matching SNAP roadNet-* degree statistics.
	g := crono.GenerateGraph(crono.GraphRoadTX, 250_000, 7)
	fmt.Printf("road network: %d intersections, %d road segments (avg degree %.2f)\n",
		g.N, g.M(), g.AvgDegree())

	pl := crono.NewNative()

	// Route planning: shortest paths from a depot.
	const depot = 0
	sssp, err := crono.SSSP(pl, g, depot, 8)
	if err != nil {
		log.Fatal(err)
	}
	reach := 0
	for _, d := range sssp.Dist {
		if d < 1<<29 {
			reach++
		}
	}
	fmt.Printf("route planning: %d intersections reachable from the depot (%d pareto fronts)\n",
		reach, sssp.Rounds)

	// Hop-count service area: how many intersections lie within k hops.
	bfs, err := crono.BFS(pl, g, depot, 8)
	if err != nil {
		log.Fatal(err)
	}
	within := 0
	for _, l := range bfs.Level {
		if l >= 0 && l <= 50 {
			within++
		}
	}
	fmt.Printf("service area: %d intersections within 50 hops (graph eccentricity %d)\n",
		within, bfs.Levels-1)

	// Thread scaling on the host: road networks have huge diameters, so
	// SSSP opens many small pareto fronts and scales worse than BFS —
	// the same contrast the paper characterizes.
	fmt.Println("\nthreads  SSSP-speedup  BFS-speedup")
	var ssspSeq, bfsSeq uint64
	for _, p := range []int{1, 2, 4, 8} {
		s, err := crono.SSSP(pl, g, depot, p)
		if err != nil {
			log.Fatal(err)
		}
		b, err := crono.BFS(pl, g, depot, p)
		if err != nil {
			log.Fatal(err)
		}
		if p == 1 {
			ssspSeq, bfsSeq = s.Report.Time, b.Report.Time
		}
		fmt.Printf("%7d  %12.2f  %11.2f\n", p,
			float64(ssspSeq)/float64(s.Report.Time),
			float64(bfsSeq)/float64(b.Report.Time))
	}
}

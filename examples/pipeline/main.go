// Pipeline: a realistic data-preparation workflow — generate a Graph500
// RMAT graph, exchange it through a standard format, relabel it for
// locality, and measure what the relabeling buys on the simulated
// multicore. This is the software-side answer to the low-locality
// problem the paper characterizes.
package main

import (
	"bytes"
	"fmt"
	"log"

	"crono"
	"crono/internal/graph"
)

func main() {
	// 1. Generate a skewed RMAT graph (Graph500-style).
	g := graph.RMAT(13, 16, 7)
	fmt.Printf("RMAT graph: %d vertices, %d edges, max degree %d\n",
		g.N, g.M(), g.MaxDegree())

	// 2. Round-trip it through MatrixMarket, as you would when
	// exchanging inputs with other tools.
	var buf bytes.Buffer
	if err := crono.WriteMatrixMarket(&buf, g); err != nil {
		log.Fatal(err)
	}
	loaded, err := crono.ReadMatrixMarket(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MatrixMarket round trip: %d edges preserved\n", loaded.M())

	// 3. Relabel vertices in BFS order to pack neighborhoods onto
	// nearby cache lines.
	reordered, _ := graph.ReorderBFS(loaded, 0)
	fmt.Printf("locality score (window 256): original %.3f -> reordered %.3f\n",
		graph.Locality(loaded, 256), graph.Locality(reordered, 256))

	// 4. Measure the effect on the simulated 256-core machine — for both
	// PageRank formulations. Reordering always improves the miss rate,
	// but the push formulation cannot bank the win: packing the hub
	// neighborhoods concentrates its per-edge locked updates onto a few
	// hot vertices and lines, so synchronization grows as fast as the
	// misses shrink. The lock-free pull formulation converts the same
	// locality gain straight into cycles.
	type variant struct {
		name string
		run  func(*crono.Graph) (*crono.Report, error)
	}
	variants := []variant{
		{"push (paper's Table I)", func(gr *crono.Graph) (*crono.Report, error) {
			m, err := crono.NewSimulator(crono.DefaultSimConfig())
			if err != nil {
				return nil, err
			}
			r, err := crono.PageRank(m, gr, 64, 5)
			if err != nil {
				return nil, err
			}
			return r.Report, nil
		}},
		{"pull (lock-free variant)", func(gr *crono.Graph) (*crono.Report, error) {
			m, err := crono.NewSimulator(crono.DefaultSimConfig())
			if err != nil {
				return nil, err
			}
			r, err := crono.PageRankPull(m, gr, 64, 5)
			if err != nil {
				return nil, err
			}
			return r.Report, nil
		}},
	}
	for _, v := range variants {
		before, err := v.run(loaded)
		if err != nil {
			log.Fatal(err)
		}
		after, err := v.run(reordered)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nPageRank %s on 64 simulated cores:\n", v.name)
		fmt.Printf("  original : %10d cycles, L1 miss %5.2f%%, sharers+waiting %4.1f%%\n",
			before.Time, before.Cache.L1MissRate(), 100*commFrac(before))
		fmt.Printf("  reordered: %10d cycles, L1 miss %5.2f%%, sharers+waiting %4.1f%%  (%.2fx)\n",
			after.Time, after.Cache.L1MissRate(), 100*commFrac(after),
			float64(before.Time)/float64(after.Time))
	}
}

// commFrac is the coherence-communication share of total thread time.
func commFrac(r *crono.Report) float64 {
	f := r.Breakdown.Fractions()
	return f[2] + f[3] // L2Home-Waiting + L2Home-Sharers
}

// Socialnet: graph analytics on a social network — PageRank influence
// ranking, triangle counting (clustering) and Louvain community
// detection, the paper's "graph processing" benchmarks.
package main

import (
	"fmt"
	"log"
	"sort"

	"crono"
)

func main() {
	// A power-law social graph (preferential attachment), standing in
	// for the paper's Facebook input.
	g := crono.GenerateGraph(crono.GraphSocial, 50_000, 3)
	fmt.Printf("social network: %d users, %d friendships (avg degree %.1f, max %d)\n",
		g.N, g.M()/2, g.AvgDegree(), g.MaxDegree())

	pl := crono.NewNative()

	// Influence: PageRank per the paper's Equation (1).
	pr, err := crono.PageRank(pl, g, 8, 20)
	if err != nil {
		log.Fatal(err)
	}
	type ranked struct {
		id   int
		rank float64
	}
	top := make([]ranked, g.N)
	for v := range top {
		top[v] = ranked{v, pr.Ranks[v]}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Println("top influencers (vertex: rank, degree):")
	for _, r := range top[:5] {
		fmt.Printf("  %6d: %.4f (degree %d)\n", r.id, r.rank, g.Degree(r.id))
	}

	// Cohesion: exact triangle counting.
	tri, err := crono.TriangleCount(pl, g, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d total\n", tri.Total)

	// Structure: Louvain community detection.
	comm, err := crono.Community(pl, g, 8, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("communities: %d found in %d passes, modularity %.3f\n",
		comm.Communities, comm.Passes, comm.Modularity)

	sizes := map[int32]int{}
	for _, c := range comm.Community {
		sizes[c]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("largest community: %d users (%.1f%%)\n",
		largest, 100*float64(largest)/float64(g.N))
}

// Archstudy: architectural design-space exploration on the simulated
// futuristic multicore — the use case CRONO was built for. Compares
// in-order cores, out-of-order cores and the Section VII locality-aware
// coherence protocol on PageRank, the suite's most sharing-intensive
// kernel.
package main

import (
	"fmt"
	"log"

	"crono"
)

func main() {
	g := crono.GenerateGraph(crono.GraphSparse, 1<<13, 42)
	fmt.Printf("input: sparse synthetic, %d vertices, %d edges\n\n", g.N, g.M())

	type variant struct {
		name   string
		mutate func(*crono.SimConfig)
	}
	variants := []variant{
		{"in-order (Table II)", func(*crono.SimConfig) {}},
		{"out-of-order", func(c *crono.SimConfig) { c.CoreType = crono.CoreOutOfOrder }},
		{"locality-aware coherence", func(c *crono.SimConfig) { c.LocalityAware = true }},
		{"full-map directory", func(c *crono.SimConfig) { c.DirPointers = c.Cores }},
	}

	const threads = 32
	fmt.Printf("PageRank on %d of 256 simulated cores:\n\n", threads)
	fmt.Printf("%-26s %12s %8s %8s %8s\n", "configuration", "cycles", "L1miss%", "net-kFH", "sync%")
	var base uint64
	for _, v := range variants {
		cfg := crono.DefaultSimConfig()
		v.mutate(&cfg)
		m, err := crono.NewSimulator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := crono.PageRank(m, g, threads, 5)
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Report
		if base == 0 {
			base = rep.Time
		}
		f := rep.Breakdown.Fractions()
		fmt.Printf("%-26s %12d %8.2f %8d %8.1f  (%.2fx)\n",
			v.name, rep.Time, rep.Cache.L1MissRate(),
			rep.NetworkFlitHops/1000, 100*f[5],
			float64(base)/float64(rep.Time))
	}
	fmt.Println("\nAs in the paper: OOO cores hide some memory latency but none of the")
	fmt.Println("coherence serialization; locality-aware caching cuts on-chip traffic.")
}
